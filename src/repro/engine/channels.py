"""Network channels: output caches, credit-based input buffers, control lane.

Each :class:`Channel` connects one sender instance to one receiver instance
and models the parts of Flink's Netty stack the paper's mechanisms act on:

* a bounded **outbox** (the "output cache"): records wait here for
  serialization; a full outbox blocks the sender → backpressure.
* a serializer/drainer process: one element at a time, costing
  ``size_bytes / bandwidth`` seconds, then ``latency`` seconds of propagation.
* **credit-based flow control**: the receiver grants ``inbox_capacity``
  credits; the drainer stalls with no credits, so a slow receiver backs the
  whole pipeline up (the "input cache" is the per-channel inbox).
* a **control lane** (:meth:`send_control`): priority messages that bypass
  all in-flight data in both caches — how DRRS trigger barriers achieve
  topologically-shortest, alignment-free propagation.
* outbox **introspection/redirection** (:meth:`extract_outbox`,
  :meth:`send_front`): how confirm barriers jump the output cache and how the
  records they bypass are re-queued onto the new instance's channel.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, TYPE_CHECKING

from ..simulation.kernel import Event, Simulator, _Callback
from .cluster import LinkSpec
from .columnar import cumulative_ship_times
from .records import RecordBatch, StreamElement, Watermark

if TYPE_CHECKING:  # pragma: no cover
    from .operators import OperatorInstance

__all__ = ["Channel", "InputChannel"]


class Channel:
    """A one-way link from a sender instance to a receiver input channel.

    The drainer is a callback-driven state machine, not a generator process:
    :meth:`_kick` plays the role the old drain Signal's ``fire()`` played
    (wake a parked drainer, or latch a pending wake-up), and
    :meth:`_drain_loop` is the loop body.  Each wake-up and each serialize
    step draws exactly the same event-heap counters the generator version
    drew, so simulated timing and tie-break order are bit-identical — only
    the per-element generator-resume machinery is gone.
    """

    __slots__ = ("sim", "link", "name", "outbox_capacity", "outbox",
                 "credits", "inbox_capacity", "input_channel",
                 "_send_waiters", "_in_flight", "_closed", "_epoch",
                 "sender", "telemetry", "_drain_parked",
                 "_drain_entry", "_ship_entry", "_deliver_entry",
                 "_serializing", "_serializing_epoch", "_wire",
                 "fault_hook", "batching", "max_batch", "_job",
                 "_deferred", "_credit_wake_at", "_reservations",
                 "_reserve_wake_at", "_ship_due", "_fused_entry",
                 "_fuse_due")

    def __init__(self, sim: Simulator, link: LinkSpec, name: str = "",
                 outbox_capacity: int = 64, inbox_capacity: int = 64):
        self.sim = sim
        self.link = link
        self.name = name
        self.outbox_capacity = outbox_capacity
        self.outbox: Deque[StreamElement] = deque()
        self.credits = inbox_capacity
        self.inbox_capacity = inbox_capacity
        self.input_channel: Optional["InputChannel"] = None
        self._send_waiters: Deque = deque()  # (Event, StreamElement) pairs
        self._in_flight = 0  # elements past the outbox, not yet delivered
        self._closed = False
        #: Bumped by flush(); deliveries scheduled under an older epoch are
        #: dropped (failure recovery discards in-flight data).
        self._epoch = 0
        self.sender: Optional["OperatorInstance"] = None
        #: Telemetry bundle shared with the owning job (None = disabled).
        self.telemetry = None
        #: Optional ``hook(channel, element) -> action`` consulted at the
        #: delivery point (after the epoch check).  ``"drop"`` discards the
        #: element (its flow-control credit is returned here, since the
        #: receiver will never pop it); ``"duplicate"`` delivers it twice
        #: (the extra pop over-returns one credit — accepted, documented
        #: fault-injection artefact); anything else delivers normally.
        #: None — the default — costs one attribute check.
        self.fault_hook = None
        # Drainer state: parked = waiting for a kick.  Born parked: with
        # nothing queued, the first productive kick (send/attach) starts
        # the loop.  No pending latch is needed — a scheduled or running
        # drain pass is atomic and re-checks all conditions before parking.
        self._drain_parked = True
        # Reusable heap entries (one allocation per channel, not per
        # element).  Drain/ship have at most one outstanding schedule each;
        # the deliver entry may sit in the heap at several positions, one
        # per in-flight element — `_wire` holds their (element, epoch)
        # payloads in delivery order (fixed per-channel latency keeps the
        # wire FIFO).
        self._drain_entry = _Callback(self._drain_loop)
        self._ship_entry = _Callback(self._ship)
        self._deliver_entry = _Callback(self._deliver_next)
        self._fused_entry = _Callback(self._ship_deliver)
        #: Scheduled time of a fused singleton ship+deliver dispatch (the
        #: element's arrival time), or None when the split per-record
        #: eventing is in effect.  See ``_ship_deliver``.
        self._fuse_due: Optional[float] = None
        self._serializing: Optional[StreamElement] = None
        # Epoch captured when the serializing element left the outbox: a
        # flush() mid-serialize must still invalidate it.
        self._serializing_epoch = 0
        self._wire: Deque = deque()  # (element, epoch) pairs
        #: Micro-batched shipping.  Off by default so standalone channels
        #: (unit tests, benches) keep per-element behaviour; StreamJob
        #: flips it on at wiring time when the job's record plane is
        #: ``"batched"``.
        self.batching = False
        self.max_batch = 64
        #: Owning StreamJob (None for standalone channels); consulted live
        #: for ``scaling_active`` so batches never span a rescale window.
        self._job = None
        #: Due times of flow-control credits owed by records the consumer
        #: popped *early* (analytic batch execution pops the whole batch at
        #: formation; the per-record plane would return each credit at that
        #: record's service boundary).  Sorted ascending; materialized
        #: lazily at kick/drain time, with an explicit wake-up when the
        #: drainer would otherwise stall past a due time.
        self._deferred: Deque[float] = deque()
        self._credit_wake_at: Optional[float] = None
        #: Release times of *virtual outbox slots*: a ship batch empties k
        #: slots at formation where the per-record drainer would free them
        #: one serialize at a time, so k-1 phantom occupants keep send-side
        #: capacity (backpressure onset) bit-identical.  Sorted ascending,
        #: expired lazily.
        self._reservations: Deque[float] = deque()
        self._reserve_wake_at: Optional[float] = None
        #: Scheduled time of the live ship-completion entry.  A batch
        #: unwind retargets the ship to an earlier boundary; the superseded
        #: heap position is recognised (and ignored) by this time.
        self._ship_due = 0.0

    # -- sender API ----------------------------------------------------------

    def send(self, element: StreamElement) -> Event:
        """Enqueue ``element``; the returned event fires once accepted.

        Blocks (event stays pending) while the outbox is full — this is the
        backpressure path.
        """
        if self._closed:
            # Decommissioned target: accept and drop.  The shared
            # pre-succeeded event costs neither an allocation nor a heap
            # push at send time.
            return self.sim.done
        if (len(self.outbox) if not self._reservations
                else self._occupied()) < self.outbox_capacity:
            # Accepted immediately: kick the drainer and hand the sender the
            # shared pre-succeeded event — no allocation, no heap push, and
            # the sender's generator resumes synchronously (see
            # Process._resume's processed-event fast path).
            self.outbox.append(element)
            self._kick()
            return self.sim.done
        if self.telemetry is not None:
            self.telemetry.registry.counter(
                "channel.backpressure_blocks", channel=self.name).inc()
        ev = self.sim.event()
        self._send_waiters.append((ev, element))
        if self._reservations:
            # The per-record drainer would free the next phantom slot (and
            # grant this waiter) at its release time; wake up then.
            self._schedule_reserve_wake()
        return ev

    def try_send(self, element: StreamElement) -> bool:
        """Non-blocking send; False when the outbox is full."""
        if self._closed:
            return True  # accept and drop
        if (len(self.outbox) if not self._reservations
                else self._occupied()) >= self.outbox_capacity:
            return False
        self.outbox.append(element)
        self._kick()
        return True

    def send_front(self, element: StreamElement) -> None:
        """Insert at the *front* of the outbox (priority-in-output-cache).

        Used by confirm barriers: they overtake everything queued in the
        output cache.  Control elements are tiny, so this never blocks.
        """
        self.outbox.appendleft(element)
        self._kick()

    def send_control(self, element: StreamElement) -> None:
        """Priority control-lane send: bypass both caches entirely.

        The element reaches the receiver's control handler after only the
        link propagation latency — this is how trigger barriers bypass all
        in-flight data (§III-A).
        """
        self.sim.call_in(self.link.latency,
                         lambda: self._deliver_control(element))

    def extract_outbox(
            self, predicate: Callable[[StreamElement], bool]
    ) -> List[StreamElement]:
        """Remove and return outbox elements matching ``predicate``.

        Relative order among the extracted elements is preserved; the rest of
        the outbox keeps its order.  Used to redirect bypassed records to a
        newly created channel during confirm-barrier injection.
        """
        kept: Deque[StreamElement] = deque()
        extracted: List[StreamElement] = []
        for element in self.outbox:
            if predicate(element):
                extracted.append(element)
            else:
                kept.append(element)
        self.outbox = kept
        # Also redirect records still *waiting* for outbox space: they were
        # emitted (routed) before the injection, so they belong to the
        # preceding epoch and must travel with the other bypassed records.
        kept_waiters: Deque = deque()
        for ev, element in self._send_waiters:
            if predicate(element):
                extracted.append(element)
                if not ev.triggered:
                    ev.succeed()  # accepted — by redirection
            else:
                kept_waiters.append((ev, element))
        self._send_waiters = kept_waiters
        if extracted:
            self._grant_sends()
        return extracted

    def inject_confirm(self, predicate: Callable[[StreamElement], bool],
                       barrier: StreamElement) -> List[StreamElement]:
        """Priority-in-output-cache barrier insertion with redirection.

        Implements the confirm-barrier placement of §III-A together with
        the fault-tolerance rule of §IV-C (Fig. 9a): the barrier overtakes
        the output cache, the records it bypasses that match ``predicate``
        are removed (returned for redirection), **but redirection concludes
        at the newest checkpoint barrier in the cache** — elements at or
        before that barrier belong to the snapshot's consistent cut and
        stay put, and the confirm barrier lands immediately after it
        (forming the integrated signal).

        Blocked send-waiters are logically behind the whole cache, so
        matching waiter elements are always redirected.
        """
        from .records import CheckpointBarrier

        elements = list(self.outbox)
        cut = -1
        for index, element in enumerate(elements):
            if isinstance(element, CheckpointBarrier):
                cut = index
        kept: List[StreamElement] = []
        bypassed: List[StreamElement] = []
        for index, element in enumerate(elements):
            if index > cut and predicate(element):
                bypassed.append(element)
            else:
                kept.append(element)
        # All elements <= cut were kept, so the checkpoint barrier sits at
        # position `cut` in `kept`; the confirm barrier goes right after it
        # (or at the very front when there is no checkpoint barrier).
        kept.insert(cut + 1, barrier)
        self.outbox = deque(kept)
        kept_waiters: Deque = deque()
        for ev, element in self._send_waiters:
            if predicate(element):
                bypassed.append(element)
                if not ev.triggered:
                    ev.succeed()
            else:
                kept_waiters.append((ev, element))
        self._send_waiters = kept_waiters
        self._grant_sends()
        self._kick()
        return bypassed

    @property
    def queued(self) -> int:
        """Elements in the outbox plus in flight (for diagnostics)."""
        return len(self.outbox) + self._in_flight

    @property
    def backlog(self) -> int:
        """Total unconsumed elements on this channel end-to-end.

        Batch members not yet past their per-record delivery time count
        here (the per-record plane would still have them in flight), so
        the sum matches the reference plane exactly.
        """
        inbox = self.input_channel.total_depth() if self.input_channel else 0
        return len(self.outbox) + self._in_flight + inbox

    def quiesce(self) -> None:
        """Collapse sender-side batch state to the per-record equivalent.

        Called when the plane collapses (rescale window, fault injection,
        recovery).  A ship batch mid-serialize is *unwound*: members whose
        per-record serialization would not have started yet go back to the
        outbox head (credits, in-flight counts and phantom slots restored),
        and the ship completion retargets to the in-progress member's
        boundary — from there the per-element drain reproduces the exact
        per-record ship/delivery times.  Scaling-time outbox surgery
        (``extract_outbox``/``inject_confirm``/``send_front``) then sees
        exactly the elements the reference plane would hold.
        """
        if self._fuse_due is not None:
            self._downgrade_fuse()
        batch = self._serializing
        if batch is not None and batch.__class__ is RecordBatch:
            self._unwind_serializing(batch)
        if self._deferred:
            self.materialize_credits(self.sim._now)

    def _unwind_serializing(self, batch: RecordBatch) -> None:
        sim = self.sim
        now = sim._now
        latency = self.link.latency
        vis = batch.visible_times
        k = len(batch.records)
        # Member j (0-based) serializes until vis[j] - latency; the first
        # boundary still in the future marks the in-progress member.
        progress = None
        for j in range(k):
            if vis[j] - latency > now:
                progress = j
                break
        if progress is None or progress == k - 1:
            return  # nothing beyond the in-progress member to unwind
        cut = progress + 1
        tail = batch.records[cut:]
        n = len(tail)
        outbox = self.outbox
        for rec in reversed(tail):
            outbox.appendleft(rec)
        self.credits += n
        # Only a batch still on the wire carries the members in
        # `_in_flight`; once delivered (short-latency links) the tally was
        # already settled at the deliver dispatch.
        for entry, _epoch in self._wire:
            if entry is batch:
                self._in_flight -= n
                break
        reservations = self._reservations
        dropped = 0
        while reservations and dropped < n and reservations[-1] > now:
            reservations.pop()
            dropped += 1
        if self.telemetry is not None:
            registry = self.telemetry.registry
            registry.counter("channel.elements_shipped",
                             channel=self.name).inc(-n)
            tail_bytes = 0.0
            for rec in tail:
                tail_bytes += rec.size_bytes
            registry.counter("channel.bytes_shipped",
                             channel=self.name).inc(-tail_bytes)
            batch.size_bytes -= tail_bytes
        else:
            for rec in tail:
                batch.size_bytes -= rec.size_bytes
        # Truncate in place: the same object sits on the wire (or already
        # in the receiver's queue), so the consumer view shrinks with it.
        del batch.records[cut:]
        del vis[cut:]
        due = vis[progress] - latency
        self._ship_due = due
        sim.schedule_entry(due, self._ship_entry)

    def flush(self) -> None:
        """Discard everything queued or in flight (failure recovery).

        The outbox empties, blocked senders are released with their
        elements dropped, in-flight deliveries are invalidated, and flow-
        control credits reset to a full window.
        """
        self._epoch += 1
        self.outbox.clear()
        waiters, self._send_waiters = self._send_waiters, deque()
        for ev, _element in waiters:
            if not ev.triggered:
                ev.succeed()
        self.credits = self.inbox_capacity
        # Credits are whole again and in-flight batches are invalidated:
        # pending early-pop credits and phantom outbox slots die with them.
        self._deferred.clear()
        self._reservations.clear()
        self._kick()

    def close(self) -> None:
        """Stop the channel: the drainer exits, queued and future sends are
        dropped, and any blocked sender is released."""
        self._closed = True
        self.outbox.clear()
        waiters, self._send_waiters = self._send_waiters, deque()
        for ev, _element in waiters:
            if not ev.triggered:
                ev.succeed()
        self._deferred.clear()
        self._reservations.clear()
        self._kick()

    # -- receiver attachment -------------------------------------------------

    def attach(self, input_channel: "InputChannel") -> None:
        self.input_channel = input_channel
        input_channel.channel = self
        self._kick()

    def _return_credit(self) -> None:
        self.credits += 1
        self._kick()

    # -- internals -------------------------------------------------------------

    def _occupied(self) -> int:
        """Outbox occupancy including unexpired virtual slot reservations."""
        res = self._reservations
        now = self.sim._now
        while res and res[0] <= now:
            res.popleft()
        return len(self.outbox) + len(res)

    def _schedule_reserve_wake(self) -> None:
        """Wake blocked senders when the next virtual slot frees."""
        res = self._reservations
        if not res:
            return
        due = res[0]
        at = self._reserve_wake_at
        if at is not None and at <= due:
            return
        self._reserve_wake_at = due
        self.sim.call_at(due, self._reserve_fire)

    def _reserve_fire(self) -> None:
        self._reserve_wake_at = None
        if self._send_waiters and not self._closed:
            self._grant_sends()
            if self._send_waiters and self._reservations:
                self._schedule_reserve_wake()

    def _grant_sends(self) -> None:
        while self._send_waiters and (
                len(self.outbox) if not self._reservations
                else self._occupied()) < self.outbox_capacity:
            waiter, element = self._send_waiters.popleft()
            if waiter.triggered:
                continue
            self.outbox.append(element)
            waiter.succeed()
            self._kick()

    def _kick(self) -> None:
        """Wake the drainer (the old drain Signal's ``fire()``).

        The wake-up must go through the heap, not run inline: an element
        sent at time T stays in the output cache until the drain *event*
        dispatches, so same-timestamp ``send_front``/``inject_confirm``/
        ``extract_outbox`` can still overtake or redirect it — the cache
        semantics every bypass protocol in the paper relies on.

        Two classes of wake-up are dropped without scheduling anything:

        * The drainer is not parked.  A scheduled-or-running drain pass is
          atomic (no yields), so it re-checks the outbox/credits/attachment
          state the kicker just changed before it exits — the old
          level-triggered pending latch re-checked conditions the loop had
          already seen.
        * The drainer could not make progress anyway (empty outbox, closed,
          no credits, unattached).  Every one of those conditions kicks
          again at the call site that clears it (send/send_front/
          _grant_sends/inject_confirm, close is terminal, pop's credit
          return, attach), so a parked drainer can never be stranded.
        """
        if self._fuse_due is not None and self.outbox and not self._closed:
            # A fused singleton is in flight and new work arrived: restore
            # the split eventing so the next serialize starts at the exact
            # per-record boundary (ship completion or right now).
            self._downgrade_fuse()
        if (self._drain_parked and not self._closed and self.outbox
                and self.input_channel is not None):
            if self.credits <= 0:
                if self._deferred \
                        and self.materialize_credits(self.sim._now):
                    pass  # an early-pop credit came due: drain proceeds
                else:
                    if self._deferred:
                        self._schedule_credit_wake()
                    if self.telemetry is not None:
                        # The drain pass this kick would have started would
                        # have stalled on flow control; count it here since
                        # the pass itself is elided.
                        self.telemetry.registry.counter(
                            "channel.credit_stalls", channel=self.name).inc()
                    return
            self._drain_parked = False
            sim = self.sim
            sim.schedule_entry(sim._now, self._drain_entry)

    # -- deferred early-pop credits -------------------------------------------

    def defer_credit(self, due: float) -> None:
        """Register a flow-control credit that comes due at time ``due``.

        Dues are registered in ascending order (analytic batch boundaries),
        keeping :attr:`_deferred` sorted.
        """
        self._deferred.append(due)

    def cancel_deferred_credit(self, due: float) -> None:
        """Drop one pending credit with time ``due`` (batch preemption
        hands the record back unconsumed, so its pop never happened)."""
        d = self._deferred
        for i in range(len(d) - 1, -1, -1):
            if d[i] == due:
                del d[i]
                return

    def materialize_credits(self, now: float) -> int:
        """Convert every deferred credit with due time <= ``now``."""
        d = self._deferred
        n = 0
        while d and d[0] <= now:
            d.popleft()
            n += 1
        if n:
            self.credits += n
        return n

    def _schedule_credit_wake(self) -> None:
        d = self._deferred
        if not d:
            return
        due = d[0]
        at = self._credit_wake_at
        if at is not None and at <= due:
            return
        self._credit_wake_at = due
        self.sim.call_at(due, self._credit_fire)

    def _credit_fire(self) -> None:
        self._credit_wake_at = None
        self._kick()

    def _drain_loop(self) -> None:
        """Serialize and ship outbox elements until blocked or drained.

        Runs of queued elements are handled in one wake-up: each element
        schedules its own serialize completion (``_ship``), which re-enters
        this loop directly — no per-element Signal round-trip.
        """
        sim = self.sim
        while True:
            if self._deferred:
                self.materialize_credits(sim._now)
            if (self._closed or not self.outbox or self.credits <= 0
                    or self.input_channel is None):
                if self._closed:
                    return
                if (self.outbox and self.credits <= 0
                        and self.input_channel is not None):
                    if self._deferred:
                        # Stalled on flow control with early-pop credits
                        # pending: the per-record drainer would resume at
                        # the next pop boundary.
                        self._schedule_credit_wake()
                    if self.telemetry is not None:
                        # Flow control, not emptiness, is stalling the
                        # drainer.
                        self.telemetry.registry.counter(
                            "channel.credit_stalls", channel=self.name).inc()
                self._drain_parked = True
                return
            element = self.outbox.popleft()
            if (self.batching and element.is_record and self.credits >= 2
                    and self.outbox and self.fault_hook is None
                    and not self._send_waiters
                    and (self._job is None
                         or not self._job.scaling_active)):
                if self._form_batch(element):
                    return
            if self.telemetry is not None:
                registry = self.telemetry.registry
                registry.counter("channel.elements_shipped",
                                 channel=self.name).inc()
                registry.counter("channel.bytes_shipped",
                                 channel=self.name).inc(element.size_bytes)
            if self._send_waiters:
                self._grant_sends()
            self.credits -= 1
            self._in_flight += 1
            serialize = element.size_bytes / self.link.bandwidth
            if serialize > 0:
                self._serializing = element
                self._serializing_epoch = self._epoch
                due = sim._now + serialize
                self._ship_due = due
                if (self.batching and not self.outbox
                        and not self._send_waiters
                        and self.fault_hook is None
                        and (self._job is None
                             or not self._job.scaling_active)):
                    # Nothing queued behind this element: the ship
                    # completion's only job would be scheduling the deliver
                    # dispatch, so fuse both into one dispatch at the
                    # arrival time.  Ship/delivery instants are unchanged;
                    # any kick that needs the drain re-entry the fusion
                    # elides (a send that should pipeline at `due`)
                    # downgrades back to the split eventing first.
                    self._fuse_due = due + self.link.latency
                    sim.schedule_entry(self._fuse_due, self._fused_entry)
                    return
                sim.schedule_entry(due, self._ship_entry)
                return
            self._wire.append((element, self._epoch))
            sim.schedule_entry(sim._now + self.link.latency,
                               self._deliver_entry)

    def _form_batch(self, first: StreamElement) -> Optional[RecordBatch]:
        """Pop the record run at the outbox head into one wire batch.

        The batch's per-record ship/delivery times are the exact cumulative
        serialize sums the per-record drainer would produce; only the heap
        traffic (one ship + one deliver dispatch for the whole run) is
        amortized.  Adaptive sizing falls out of the gates: available
        credits and outbox occupancy cap the run, so backpressure shrinks
        batches and an idle channel ships whatever the drain kick found.
        Returns None (nothing popped beyond ``first``) when no second
        eligible record follows.
        """
        link = self.link
        bandwidth = link.bandwidth
        ser = first.size_bytes / bandwidth
        if ser <= 0:
            return None
        outbox = self.outbox
        nxt = outbox[0]
        if not nxt.is_record or nxt.size_bytes / bandwidth <= 0:
            return None
        sim = self.sim
        limit = min(self.credits, self.max_batch)
        records = [first]
        total = first.size_bytes
        job = self._job
        if job is not None and job.columnar_active:
            # Columnar plane: pop the run first, then compute every member's
            # cumulative serialize time with one np.add.accumulate — the
            # same left-to-right float64 additions the scalar loop below
            # performs, so the ship/delivery instants are bitwise equal.
            sizes = [first.size_bytes]
            while len(records) < limit and outbox:
                nxt = outbox[0]
                if not nxt.is_record:
                    break
                if nxt.size_bytes / bandwidth <= 0:
                    break
                outbox.popleft()
                records.append(nxt)
                sizes.append(nxt.size_bytes)
                total += nxt.size_bytes
            if len(records) == 1:
                return None
            ship_times = cumulative_ship_times(sizes, sim._now, bandwidth)
        else:
            s = sim._now + ser
            ship_times = [s]
            while len(records) < limit and outbox:
                nxt = outbox[0]
                if not nxt.is_record:
                    break
                nser = nxt.size_bytes / bandwidth
                if nser <= 0:
                    break
                outbox.popleft()
                records.append(nxt)
                s += nser
                ship_times.append(s)
                total += nxt.size_bytes
            if len(records) == 1:
                # The run evaporated (head re-checked ineligible): restore
                # the per-element path for `first`.
                return None
        telemetry = self.telemetry
        if telemetry is not None:
            registry = telemetry.registry
            shipped = registry.counter("channel.elements_shipped",
                                       channel=self.name)
            shipped_bytes = registry.counter("channel.bytes_shipped",
                                             channel=self.name)
            for rec in records:
                shipped.inc()
                shipped_bytes.inc(rec.size_bytes)
        k = len(records)
        latency = link.latency
        visible = [t + latency for t in ship_times]
        self.credits -= k
        self._in_flight += k
        batch = RecordBatch(records, visible, total)
        epoch = self._epoch
        # On the wire at formation: the deliver dispatch fires at the
        # *first* member's per-record delivery time; later members become
        # visible at theirs without further heap traffic.
        self._wire.append((batch, epoch))
        sim.schedule_entry(visible[0], self._deliver_entry)
        # The serialize slot stays busy until the last member ships.
        self._serializing = batch
        self._serializing_epoch = epoch
        self._ship_due = ship_times[-1]
        sim.schedule_entry(ship_times[-1], self._ship_entry)
        # Members 2..k vacated their outbox slots early; phantom occupants
        # keep send-side capacity identical until the per-record pop times.
        reservations = self._reservations
        for t in ship_times[:-1]:
            reservations.append(t)
        return batch

    def _ship_deliver(self) -> None:
        """Fused singleton ship completion + delivery (batched plane).

        Fires at the element's arrival time; the serialize completed at
        ``_ship_due`` with nothing queued behind it, so no drain re-entry
        was needed in between (``_downgrade_fuse`` restores the split
        eventing whenever that stops being true before this fires).
        """
        if self._fuse_due != self.sim._now:
            # Downgraded to the split path, or a stale heap position: a
            # cancelled schedule, not a processed event.
            self.sim.discount()
            return
        self._fuse_due = None
        element, self._serializing = self._serializing, None
        if element is None:
            self.sim.discount()
            return
        self._in_flight -= 1
        if self._serializing_epoch == self._epoch:
            self._deliver_one(element)
        self._drain_loop()

    def _downgrade_fuse(self) -> None:
        """Collapse a fused ship+deliver back to split per-record eventing.

        Called when something needs the drain re-entry or the parked state
        the fusion elided: a send that should start serializing at the ship
        boundary, or a plane collapse (quiesce) about to perform outbox
        surgery.  Restores the exact per-record channel state for the
        current time; the fused heap position dies on its time guard.
        """
        sim = self.sim
        self._fuse_due = None
        if sim._now < self._ship_due:
            # Still serializing: restore the classic ship completion, which
            # re-enters the drain loop at the per-record boundary.
            sim.schedule_entry(self._ship_due, self._ship_entry)
            return
        # Serialize already finished: per-record state at this instant is
        # "element on the wire awaiting delivery, drainer parked".
        element, self._serializing = self._serializing, None
        if element is None:
            return
        self._wire.append((element, self._serializing_epoch))
        sim.schedule_entry(self._ship_due + self.link.latency,
                           self._deliver_entry)
        self._drain_parked = True

    def _ship(self) -> None:
        """Serialize finished: put the element on the wire, keep draining."""
        sim = self.sim
        if sim._now != self._ship_due:
            # Superseded heap position (a batch unwind retargeted the ship
            # boundary): a cancelled schedule, not a processed event.
            sim.discount()
            return
        element, self._serializing = self._serializing, None
        if element is None:
            sim.discount()
            return
        if element.__class__ is not RecordBatch:
            self._wire.append((element, self._serializing_epoch))
            sim.schedule_entry(sim._now + self.link.latency,
                               self._deliver_entry)
        # A batch went on the wire at formation with its deliver dispatch
        # already scheduled; this entry only marks the serialize slot free.
        self._drain_loop()

    def _deliver_next(self) -> None:
        element, epoch = self._wire.popleft()
        if element.__class__ is RecordBatch:
            self._in_flight -= len(element.records)
            if epoch != self._epoch:
                return  # flushed while in flight: dropped (all members)
            if self.input_channel is None:
                return
            if self.batching and (self._job is None
                                  or not self._job.scaling_active):
                self.input_channel.deliver_batch(element)
            else:
                # The plane collapsed (rescale window, fault injection,
                # recovery) while the batch was in flight: fall back to
                # per-record delivery at the original per-record times.
                self._explode(element, epoch)
            return
        self._in_flight -= 1
        if epoch != self._epoch:
            return  # flushed while in flight: dropped
        self._deliver_one(element)

    def _deliver_one(self, element: StreamElement) -> None:
        hook = self.fault_hook
        if hook is not None:
            action = hook(self, element)
            if action == "drop":
                self.credits += 1
                self._kick()
                return
            if action == "duplicate" and self.input_channel is not None:
                self.input_channel.deliver(element)
        if self.input_channel is not None:
            self.input_channel.deliver(element)

    def _explode(self, batch: RecordBatch, epoch: int) -> None:
        """Deliver a batch's members individually: past-due members land
        now (in order), future ones at their original per-record times."""
        sim = self.sim
        now = sim._now
        records = batch.records
        visible = batch.visible_times
        for i in range(batch.next_index, len(records)):
            if visible[i] <= now:
                self._deliver_one(records[i])
            else:
                sim.call_at(
                    visible[i],
                    lambda r=records[i], e=epoch: self._deliver_late(r, e))

    def _deliver_late(self, element: StreamElement, epoch: int) -> None:
        if epoch == self._epoch:
            self._deliver_one(element)

    def _deliver_control(self, element: StreamElement) -> None:
        if self.input_channel is not None:
            self.input_channel.deliver_control(element)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Channel {self.name} backlog={self.backlog}>"


class InputChannel:
    """The receiver-side view of one channel: the per-channel input cache."""

    __slots__ = ("instance", "name", "queue", "channel", "watermark",
                 "block_tokens", "is_auxiliary", "_nbatches")

    def __init__(self, instance: "OperatorInstance", name: str = ""):
        self.instance = instance
        self.name = name
        self.queue: Deque[StreamElement] = deque()
        #: Number of RecordBatch carriers currently in ``queue``.  Kept as
        #: an explicit count (not derived) so the zero case — all of the
        #: per-record plane, and most of the batched plane's control flow —
        #: stays a single truthiness test on the hot path.
        self._nbatches = 0
        self.channel: Optional[Channel] = None
        #: Latest watermark seen on this channel.
        self.watermark = float("-inf")
        #: Tokens of the alignments currently blocking this channel; the
        #: channel is readable only when no token is held.  Token-based
        #: blocking lets overlapping alignments (concurrent subscales,
        #: checkpoint + scaling) coexist without releasing each other.
        self.block_tokens: set = set()
        #: True for runtime-created auxiliary channels (re-route paths);
        #: excluded from watermark aggregation, checkpoint alignment and EOS.
        self.is_auxiliary = False

    @property
    def blocked(self) -> bool:
        return bool(self.block_tokens)

    def block(self, token) -> None:
        self.block_tokens.add(token)
        # An analytic consume-batch was formed against the old block state;
        # collapse it so subsequent poll decisions see the new one.
        inst = self.instance
        if getattr(inst, "_batch_records", None) is not None:
            inst.preempt_batch()

    def unblock(self, token) -> None:
        self.block_tokens.discard(token)
        inst = self.instance
        if getattr(inst, "_batch_records", None) is not None:
            inst.preempt_batch()
        if not self.block_tokens:
            inst.wake.fire()

    def deliver(self, element: StreamElement) -> None:
        self.queue.append(element)
        self.instance.wake.fire()

    def deliver_batch(self, batch: RecordBatch) -> None:
        """Queue a micro-batch carrier (one wake, k records)."""
        self.queue.append(batch)
        self._nbatches += 1
        self.instance.wake.fire()

    def deliver_control(self, element: StreamElement) -> None:
        self.instance.on_control(self, element)

    def peek(self) -> Optional[StreamElement]:
        if not self.queue:
            return None
        head = self.queue[0]
        if head.__class__ is RecordBatch:
            index = head.next_index
            if head.visible_times[index] <= self.instance.sim.now:
                return head.records[index]
            return None  # not yet delivered on the per-record plane
        return head

    def pop(self) -> StreamElement:
        """Consume the head element and return its flow-control credit."""
        if self._nbatches:
            head = self.queue[0]
            if head.__class__ is RecordBatch:
                index = head.next_index
                element = head.records[index]
                head.next_index = index + 1
                if head.next_index == len(head.records):
                    self.queue.popleft()
                    self._nbatches -= 1
                channel = self.channel
                if channel is not None:
                    channel.credits += 1
                    channel._kick()
                return element
        element = self.queue.popleft()
        channel = self.channel
        if channel is not None:
            # Inlined _return_credit (hot path).
            channel.credits += 1
            channel._kick()
        return element

    def remove(self, element: StreamElement) -> None:
        """Consume a specific (possibly non-head) element.

        Used by intra-channel scheduling, which may process a later record
        while the head is unprocessable.  Credit accounting matches
        :meth:`pop`.
        """
        self.queue.remove(element)
        if self.channel is not None:
            self.channel._return_credit()

    def note_watermark(self, watermark: Watermark) -> None:
        if watermark.timestamp > self.watermark:
            self.watermark = watermark.timestamp

    def materialize(self, now: float) -> None:
        """Explode queued batch carriers back to individual records.

        Members already visible (their per-record delivery time has
        passed) take the carrier's place in the queue; members still "on
        the wire" in per-record terms are re-delivered at their original
        times through the backing channel's delivery path (epoch-checked,
        fault hook consulted).  Called when the plane collapses — scaling
        window, fault injection, recovery — so every consumer-side
        structure holds only plain elements afterwards.
        """
        if not self._nbatches:
            return
        out: Deque[StreamElement] = deque()
        channel = self.channel
        sim = self.instance.sim
        for element in self.queue:
            if element.__class__ is not RecordBatch:
                out.append(element)
                continue
            vis = element.visible_times
            records = element.records
            for i in range(element.next_index, len(records)):
                if vis[i] <= now:
                    out.append(records[i])
                elif channel is not None:
                    sim.call_at(
                        vis[i],
                        lambda r=records[i], e=channel._epoch:
                        channel._deliver_late(r, e))
                else:
                    sim.call_at(vis[i],
                                lambda r=records[i]: self.deliver(r))
        self.queue = out
        self._nbatches = 0

    def total_depth(self) -> int:
        """All unconsumed members, including not-yet-visible ones."""
        if not self._nbatches:
            return len(self.queue)
        n = 0
        for element in self.queue:
            n += len(element) if element.__class__ is RecordBatch else 1
        return n

    def __len__(self) -> int:
        if not self._nbatches:
            return len(self.queue)
        # Logical depth the per-record plane would report: batch members
        # past their per-record delivery time count, later ones do not.
        n = 0
        now = self.instance.sim.now
        for element in self.queue:
            if element.__class__ is RecordBatch:
                vis = element.visible_times
                for i in range(element.next_index, len(element.records)):
                    if vis[i] <= now:
                        n += 1
                    else:
                        break
            else:
                n += 1
        return n

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<InputChannel {self.name} depth={len(self.queue)}>"
