"""Key-group partitioning, Flink style.

Keys are hashed into a fixed number of *key-groups*; key-groups are the
atomic unit of state assignment and migration (the paper's migration unit,
§V-A).  The default assignment gives each instance a contiguous key-group
range, exactly like Flink's ``KeyGroupRangeAssignment``.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Tuple

__all__ = [
    "key_to_key_group",
    "uniform_ranges",
    "KeyGroupAssignment",
]


def key_to_key_group(key: Any, num_key_groups: int) -> int:
    """Deterministically hash ``key`` into ``[0, num_key_groups)``.

    Uses CRC32 over the string form so results are stable across processes
    and Python versions (``hash()`` is salted).
    """
    if num_key_groups < 1:
        raise ValueError("num_key_groups must be >= 1")
    digest = zlib.crc32(repr(key).encode("utf-8"))
    return digest % num_key_groups


def uniform_ranges(num_key_groups: int, parallelism: int) -> List[Tuple[int, int]]:
    """Contiguous per-instance ranges ``[start, end)``, Flink's formula."""
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    if num_key_groups < parallelism:
        raise ValueError(
            f"num_key_groups ({num_key_groups}) must be >= parallelism "
            f"({parallelism})")
    ranges = []
    for index in range(parallelism):
        start = index * num_key_groups // parallelism
        end = (index + 1) * num_key_groups // parallelism
        ranges.append((start, end))
    return ranges


class KeyGroupAssignment:
    """A mapping key-group → owning instance index, with rescale diffing."""

    def __init__(self, num_key_groups: int, parallelism: int,
                 mapping: Dict[int, int] = None):
        self.num_key_groups = num_key_groups
        self.parallelism = parallelism
        if mapping is None:
            mapping = {}
            for instance, (start, end) in enumerate(
                    uniform_ranges(num_key_groups, parallelism)):
                for kg in range(start, end):
                    mapping[kg] = instance
        if set(mapping) != set(range(num_key_groups)):
            raise ValueError("mapping must cover every key-group exactly once")
        self._mapping = dict(mapping)

    def owner(self, key_group: int) -> int:
        return self._mapping[key_group]

    def groups_of(self, instance: int) -> List[int]:
        return sorted(kg for kg, inst in self._mapping.items()
                      if inst == instance)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._mapping)

    def copy(self) -> "KeyGroupAssignment":
        return KeyGroupAssignment(
            self.num_key_groups, self.parallelism, dict(self._mapping))

    def rescaled_uniform(self, new_parallelism: int) -> "KeyGroupAssignment":
        """The uniform assignment for a new parallelism (paper's C0 policy)."""
        return KeyGroupAssignment(self.num_key_groups, new_parallelism)

    def diff(self, target: "KeyGroupAssignment") -> List[Tuple[int, int, int]]:
        """Migrations needed to reach ``target``.

        Returns ``(key_group, from_instance, to_instance)`` triples for every
        key-group whose owner changes, sorted by key-group (the paper's
        lexicographic order used by the Subscale Scheduler).
        """
        if target.num_key_groups != self.num_key_groups:
            raise ValueError("key-group counts differ")
        moves = []
        for kg in range(self.num_key_groups):
            src = self._mapping[kg]
            dst = target._mapping[kg]
            if src != dst:
                moves.append((kg, src, dst))
        return moves

    def apply_move(self, key_group: int, to_instance: int) -> None:
        """Reassign one key-group (used as migrations complete)."""
        if key_group not in self._mapping:
            raise KeyError(key_group)
        self._mapping[key_group] = to_instance

    def counts(self) -> Dict[int, int]:
        """Number of key-groups held per instance index."""
        counts: Dict[int, int] = {}
        for inst in self._mapping.values():
            counts[inst] = counts.get(inst, 0) + 1
        return counts
