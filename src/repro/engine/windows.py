"""Window operators: sliding-window aggregation and windowed joins.

Both operators keep their panes inside the instance's key-group state
backend, so window state migrates with the key-group — exactly what makes
window-heavy workloads (NEXMark Q7/Q8) expensive to rescale.

State-size accounting: each record contributes ``bytes_per_record`` to its
key-group (list-style window contents), released when the pane is purged.
This is how the benchmarks reach the paper's state-size targets (~800 MB for
Q7, ~3 GB for Q8, §V-B) without materialising gigabytes of Python objects.

**Granularity note**: panes aggregate at *key-group* granularity (one pane
per key-group per window start) rather than per key — the same batching
compromise that lets one simulated record stand for hundreds of physical
ones.  Key-groups are the atomic unit of state migration, so this does not
change any scaling behaviour; per-key state semantics are exercised by the
``KeyedReduceLogic`` operators instead.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Tuple

from .columnar import _np
from .operators import OperatorLogic
from .records import Record, StreamElement

__all__ = ["SlidingWindowAggregateLogic", "WindowedJoinLogic"]

#: Minimum same-(key-group, bucket) run length before the columnar
#: accumulation path pays for its per-pane array setup.  Below this the
#: scalar adds win; batch-wide bucketing is vectorized regardless.
_COLUMNAR_MIN_RUN = 3

#: Minimum consume-batch size before building the column view at all.
_COLUMNAR_MIN_BATCH = 8


# One (key-group, window-start) aggregation pane, stored as a bare list for
# update speed: [count, bytes, value].  With ~size/slide panes touched per
# record this is the single hottest store in the engine; list indexing beats
# attribute access and the pane never leaves this module.
_P_COUNT, _P_BYTES, _P_VALUE = 0, 1, 2


def _window_starts(event_time: float, size: float, slide: float
                   ) -> List[float]:
    """Starts of all sliding windows containing ``event_time``."""
    last = math.floor(event_time / slide) * slide
    first = last - size + slide
    starts = []
    start = first
    while start <= last:
        if start + size > event_time >= start:
            starts.append(start)
        start += slide
    return starts


class SlidingWindowAggregateLogic(OperatorLogic):
    """Keyed sliding-window aggregate (NEXMark Q7 style: max over window).

    Per window fire, emits one record per key-group pane (value = aggregate),
    then purges the pane and releases its state bytes.
    """

    # Pane feeding reads only the record (event_time/count/value) and the
    # state backend — never sim.now — and emits nothing per record, so the
    # batched plane may apply records analytically at their end times.
    batch_eligible = True

    def __init__(self, size: float, slide: float,
                 agg_fn: Callable[[Any, Record], Any] = None,
                 bytes_per_record: float = 512.0,
                 allowed_lateness: float = 0.0):
        if size <= 0 or slide <= 0:
            raise ValueError("size and slide must be positive")
        if size < slide:
            raise ValueError("size must be >= slide for sliding windows")
        self.size = size
        self.slide = slide
        self.agg_fn = agg_fn or self._default_agg
        self.bytes_per_record = bytes_per_record
        self.allowed_lateness = allowed_lateness
        self.windows_fired = 0
        # Window starts depend on event_time only through its slide bucket;
        # records cluster in few buckets, so memoize per bucket.
        self._starts_memo: dict = {}
        self._fast_agg = self.agg_fn is SlidingWindowAggregateLogic._default_agg
        # Fire-floor memo: key_group -> [state version, lower bound on the
        # start of any live pane].  ``on_watermark`` skips a group's entry
        # scan entirely while ``floor + size > cutoff`` — no pane can be
        # ripe.  The bound is maintained by this logic's own pane
        # creations/purges; any *foreign* bulk mutation of the group's
        # entries (migration install, rollback, recovery merge) bumps
        # ``KeyGroupState.version``, which invalidates the memo entry and
        # forces one full rescan.  A stale-low floor only costs a scan;
        # version invalidation prevents the dangerous stale-high case.
        self._fire_floor: dict = {}
        # Grid-exact windows additionally let ``on_watermark`` *probe* ripe
        # panes by key instead of scanning every entry: when the slide is a
        # multiple of 1/8 and the size an exact float multiple of the
        # slide, every start ``_window_starts`` ever computes is an exact
        # multiple of the slide, and stepping ``start += slide`` from a
        # live pane's start reproduces the exact float keys (all values are
        # multiples of 2^-3 far below 2^50, so the arithmetic is exact).
        # Non-grid windows (or an invalidated memo) take the scan path.
        eighth = slide * 8.0
        self._grid_exact = (eighth == math.floor(eighth)
                            and math.fmod(size, slide) == 0.0)

    @staticmethod
    def _default_agg(current: Any, record: Record) -> Any:
        candidate = record.value if record.value is not None else record.count
        try:
            if current is None or candidate > current:
                return candidate
        except TypeError:
            return candidate
        return current

    @staticmethod
    def _columnar_run_max(recs, a, b, panes):
        """Fold the run's max candidate, or None when ineligible.

        The columnar path collapses the per-record, per-pane max fold
        into one fold over the run plus a single compare per pane.  That
        collapse is observably identical only when every comparison is
        exception-free and totally ordered, so it is gated on all
        candidates — and all current pane values — being plain non-NaN
        ints or floats; bools, NaNs and mixed types keep the scalar
        path's try/except, first-write-wins semantics.
        """
        for pane in panes:
            v = pane[_P_VALUE]
            if v is not None and type(v) is not int and type(v) is not float:
                return None
        runmax = None
        for idx in range(a, b):
            rec = recs[idx]
            cand = rec.value if rec.value is not None else rec.count
            t = type(cand)
            if (t is not int and t is not float) or cand != cand:
                return None
            if runmax is None or cand > runmax:
                runmax = cand
        return runmax

    def on_record(self, record, instance):
        kg = record.key_group
        event_time = record.event_time
        bucket = math.floor(event_time / self.slide)
        # Memoized per bucket: the ``("pane", start)`` entry keys themselves,
        # so the hot loop allocates no tuples at all.
        pane_keys = self._starts_memo.get(bucket)
        if pane_keys is None:
            pane_keys = [("pane", start) for start in
                         _window_starts(event_time, self.size, self.slide)]
            self._starts_memo[bucket] = pane_keys
        if not pane_keys:
            return []
        # One pass over the key-group's entry dict; the per-pane
        # ``state.get``/``state.put``/``state.add_bytes`` calls of the naive
        # loop collapse into direct entry access plus one merged byte-count
        # update (all deltas are positive, so merging cannot hit the
        # zero-clamp and is observably identical).
        state = instance.state
        group = state.group(kg)
        if group is None:
            group = state.register_group(kg)
        entries = group.entries
        count = record.count
        added = self.bytes_per_record * count
        fast_agg = self._fast_agg
        if fast_agg:
            candidate = record.value if record.value is not None else count
        floor = self._fire_floor.get(kg)
        if floor is not None and floor[0] != group.version:
            floor = None  # foreign bulk mutation: next watermark rescans
        new_panes = 0
        for pane_key in pane_keys:
            pane = entries.get(pane_key)
            if pane is None:
                pane = [0, 0.0, None]
                entries[pane_key] = pane
                new_panes += 1
                if floor is not None and pane_key[1] < floor[1]:
                    floor[1] = pane_key[1]
            pane[_P_COUNT] += count
            if fast_agg:
                current = pane[_P_VALUE]
                try:
                    if current is None or candidate > current:
                        pane[_P_VALUE] = candidate
                except TypeError:
                    pane[_P_VALUE] = candidate
            else:
                pane[_P_VALUE] = self.agg_fn(pane[_P_VALUE], record)
            pane[_P_BYTES] += added
        group.size_bytes += (added * len(pane_keys)
                             + new_panes * state.bytes_per_entry)
        return []

    def on_record_batch(self, records, lo, hi, instance):
        """Apply consume-batch members ``records[lo:hi]`` in one call.

        Bit-identical to calling :meth:`on_record` member-by-member:
        members are regrouped by key-group — safe, because two key-groups
        never share a pane, an entries dict or a ``size_bytes`` cell — and
        within a group processed in arrival order, with the per-pane dict
        lookups hoisted out of runs of records sharing one slide bucket.
        Every float accumulates into its pane and into ``size_bytes`` in
        exactly the per-record order, so sums match to the last bit.
        Custom ``agg_fn``s may observe global call order, so only the
        default (max) aggregate takes the regrouped path.

        Under the columnar record plane, long same-bucket runs additionally
        take a vectorized path over :meth:`RecordBatch.columns` views:
        integer count sums are order-free and therefore exact, and float
        byte accumulations use ``np.add.accumulate`` seeded with the
        current accumulator so the left-to-right IEEE-754 addition order —
        and therefore every bit of the result — matches the scalar path.
        The per-pane max fold collapses to one fold plus one compare per
        pane, gated on plain-numeric values (see
        :meth:`_columnar_run_max`).
        """
        if not self._fast_agg:
            for idx in range(lo, hi):
                self.on_record(records[idx], instance)
            return
        cols = added_all = buckets_all = None
        if (hi - lo >= _COLUMNAR_MIN_BATCH
                and getattr(instance.job, "columnar_active", False)):
            from .records import RecordBatch
            cols = RecordBatch(records[lo:hi]).columns()
            if cols is not None:
                # One vector multiply for every member's byte increment;
                # each element equals the scalar path's ``bpr * count``
                # exactly (same IEEE-754 double multiply).
                added_all = self.bytes_per_record * cols.count
                # Batch-wide slide buckets in one vectorized pass:
                # float64 divide + floor + int64 narrowing produce the
                # same integers as per-record ``math.floor(t / slide)``
                # (identical IEEE-754 divide, values far below 2^53).
                buckets_all = _np.floor(
                    cols.event_time / self.slide).astype(
                        _np.int64).tolist()
        by_kg: dict = {}
        by_pos: dict = {}
        for idx in range(lo, hi):
            rec = records[idx]
            kg = rec.key_group
            lst = by_kg.get(kg)
            if lst is None:
                by_kg[kg] = [rec]
                if cols is not None:
                    by_pos[kg] = [idx - lo]
            else:
                lst.append(rec)
                if cols is not None:
                    by_pos[kg].append(idx - lo)
        state = instance.state
        groups = state._groups
        memo = self._starts_memo
        fire_floor = self._fire_floor
        slide = self.slide
        size = self.size
        bpr = self.bytes_per_record
        bpe = state.bytes_per_entry
        floor_of = math.floor
        for kg, recs in by_kg.items():
            group = groups.get(kg)
            if group is None:
                group = state.register_group(kg)
            entries = group.entries
            gsb = group.size_bytes
            floor = fire_floor.get(kg)
            if floor is not None and floor[0] != group.version:
                floor = None
            pos = by_pos.get(kg) if cols is not None else None
            m = len(recs)
            a = 0
            while a < m:
                rec = recs[a]
                if pos is not None:
                    bucket = buckets_all[pos[a]]
                    b = a + 1
                    while b < m and buckets_all[pos[b]] == bucket:
                        b += 1
                else:
                    bucket = floor_of(rec.event_time / slide)
                    b = a + 1
                    while b < m and floor_of(recs[b].event_time
                                             / slide) == bucket:
                        b += 1
                pane_keys = memo.get(bucket)
                if pane_keys is None:
                    pane_keys = [("pane", start) for start in
                                 _window_starts(rec.event_time, size, slide)]
                    memo[bucket] = pane_keys
                if not pane_keys:
                    a = b
                    continue
                npk = len(pane_keys)
                panes = []
                new_panes = 0
                for pane_key in pane_keys:
                    pane = entries.get(pane_key)
                    if pane is None:
                        pane = [0, 0.0, None]
                        entries[pane_key] = pane
                        new_panes += 1
                        if floor is not None and pane_key[1] < floor[1]:
                            floor[1] = pane_key[1]
                    panes.append(pane)
                run = b - a
                runmax = None
                if cols is not None and run >= _COLUMNAR_MIN_RUN:
                    runmax = self._columnar_run_max(recs, a, b, panes)
                if runmax is not None:
                    seg = pos[a:b]
                    added_seg = added_all[seg]
                    total = int(cols.count[seg].sum())
                    chain = _np.empty(run + 1)
                    for pane in panes:
                        pane[_P_COUNT] += total
                        current = pane[_P_VALUE]
                        if current is None or runmax > current:
                            pane[_P_VALUE] = runmax
                        chain[0] = pane[_P_BYTES]
                        chain[1:] = added_seg
                        pane[_P_BYTES] = float(
                            _np.add.accumulate(chain)[-1])
                    gchain = _np.empty(run)
                    # The run's first member keeps the scalar association
                    # for the pane-creation byte charge: gsb + (added*npk
                    # + new_panes*bpe) as one sum, then per-member adds.
                    gchain[0] = gsb + (float(added_seg[0]) * npk
                                       + new_panes * bpe)
                    if run > 1:
                        gchain[1:] = added_seg[1:] * npk
                    gsb = float(_np.add.accumulate(gchain)[-1])
                    a = b
                    continue
                for idx in range(a, b):
                    rec = recs[idx]
                    count = rec.count
                    added = bpr * count
                    candidate = (rec.value if rec.value is not None
                                 else count)
                    for pane in panes:
                        pane[_P_COUNT] += count
                        current = pane[_P_VALUE]
                        try:
                            if current is None or candidate > current:
                                pane[_P_VALUE] = candidate
                        except TypeError:
                            pane[_P_VALUE] = candidate
                        pane[_P_BYTES] += added
                    if idx == a:
                        # Only the run's first record can create panes;
                        # later members add ``x + 0.0`` in the per-record
                        # plane, which is bitwise ``x`` here (x >= 0).
                        gsb += added * npk + new_panes * bpe
                    else:
                        gsb += added * npk
                a = b
            group.size_bytes = gsb

    def on_watermark(self, timestamp, instance):
        outputs: List[StreamElement] = []
        cutoff = timestamp - self.allowed_lateness
        size = self.size
        state = instance.state
        bytes_per_entry = state.bytes_per_entry
        now = instance.sim.now
        fire_floor = self._fire_floor
        grid_exact = self._grid_exact
        slide = self.slide
        for group in state.groups():
            if not group.processable:
                continue
            kg = group.key_group
            floor = fire_floor.get(kg)
            if floor is not None and floor[0] == group.version:
                start = floor[1]
                if start + size > cutoff:
                    continue  # provably nothing ripe: skip entirely
                if grid_exact:
                    # Probe ripe panes directly on the start grid — no
                    # entry scan at all.  Fires in ascending start order;
                    # the floor advances to the first unripe grid point,
                    # so probes are amortised O(fired + watermark delta).
                    entries = group.entries
                    while start + size <= cutoff:
                        pane_key = ("pane", start)
                        pane = entries.get(pane_key)
                        if pane is not None:
                            outputs.append(Record(
                                key=("window", kg, start),
                                key_group=None,
                                event_time=start + size,
                                value=pane[_P_VALUE],
                                count=1,
                                size_bytes=64.0,
                                created_at=now,
                            ))
                            del entries[pane_key]
                            group.size_bytes = max(
                                0.0, group.size_bytes - pane[_P_BYTES])
                            group.size_bytes = max(
                                0.0, group.size_bytes - bytes_per_entry)
                            self.windows_fired += 1
                        start += slide
                    floor[1] = start
                    continue
            fired: List[Tuple[Any, list]] = []
            min_live = math.inf
            # Scan without copying: nothing mutates entries until the
            # purge loop below.
            for entry_key, pane in group.entries.items():
                if type(entry_key) is tuple and entry_key[0] == "pane":
                    start = entry_key[1]
                    if start + size <= cutoff:
                        fired.append((entry_key, pane))
                    elif start < min_live:
                        min_live = start
            if floor is None:
                fire_floor[kg] = [group.version, min_live]
            else:
                floor[0] = group.version
                floor[1] = min_live
            for entry_key, pane in fired:
                start = entry_key[1]
                outputs.append(Record(
                    key=("window", group.key_group, start),
                    key_group=None,
                    event_time=start + size,
                    value=pane[_P_VALUE],
                    count=1,
                    size_bytes=64.0,
                    created_at=now,
                ))
                # Inlined state.add_bytes(kg, -pane bytes) followed by
                # state.delete(kg, entry_key) — including both zero-clamps,
                # in the same order.
                del group.entries[entry_key]
                group.size_bytes = max(0.0, group.size_bytes - pane[_P_BYTES])
                group.size_bytes = max(0.0, group.size_bytes - bytes_per_entry)
                self.windows_fired += 1
        return outputs


class WindowedJoinLogic(OperatorLogic):
    """Keyed tumbling-window co-group join (NEXMark Q8 style).

    Records are tagged by side via ``side_fn(record) -> "left" | "right"``.
    On window fire, emits one record per key-group pane where both sides are
    present (value = (#left, #right)).
    """

    # Same contract as SlidingWindowAggregateLogic: per-record feeding is
    # time-blind and silent, so analytic batch application is exact.
    batch_eligible = True

    def __init__(self, size: float, slide: Optional[float] = None,
                 side_fn: Callable[[Record], str] = None,
                 bytes_per_record: float = 512.0):
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self.slide = slide or size
        if self.size < self.slide:
            raise ValueError("size must be >= slide")
        self.side_fn = side_fn or (
            lambda record: record.value[0] if isinstance(record.value, tuple)
            else "left")
        self.bytes_per_record = bytes_per_record
        self.joins_emitted = 0
        self._starts_memo: dict = {}
        # Same fire-floor memo and grid-exact probe gate as
        # SlidingWindowAggregateLogic (see there).
        self._fire_floor: dict = {}
        eighth = self.slide * 8.0
        self._grid_exact = (eighth == math.floor(eighth)
                            and math.fmod(self.size, self.slide) == 0.0)

    def on_record(self, record, instance):
        kg = record.key_group
        side = self.side_fn(record)
        bucket = math.floor(record.event_time / self.slide)
        starts = self._starts_memo.get(bucket)
        if starts is None:
            starts = _window_starts(record.event_time, self.size, self.slide)
            self._starts_memo[bucket] = starts
        for start in starts:
            pane_key = ("join", start)
            pane = instance.state.get(kg, pane_key)
            if pane is None:
                pane = {"left": 0, "right": 0, "bytes": 0.0}
                instance.state.put(kg, pane_key, pane)
                floor = self._fire_floor.get(kg)
                if floor is not None:
                    group = instance.state.group(kg)
                    if floor[0] == group.version and start < floor[1]:
                        floor[1] = start
            pane[side] = pane.get(side, 0) + record.count
            added = self.bytes_per_record * record.count
            pane["bytes"] += added
            instance.state.add_bytes(kg, added)
        return []

    def on_watermark(self, timestamp, instance):
        outputs: List[StreamElement] = []
        fire_floor = self._fire_floor
        size = self.size
        slide = self.slide
        grid_exact = self._grid_exact
        for group in instance.state.groups():
            if not group.processable:
                continue
            floor = fire_floor.get(group.key_group)
            if floor is not None and floor[0] == group.version:
                start = floor[1]
                if start + size > timestamp:
                    continue  # provably nothing ripe: skip entirely
                if grid_exact:
                    entries = group.entries
                    while start + size <= timestamp:
                        pane_key = ("join", start)
                        pane = entries.get(pane_key)
                        if pane is not None:
                            if pane.get("left", 0) and pane.get("right", 0):
                                outputs.append(Record(
                                    key=("join", group.key_group, start),
                                    key_group=None,
                                    event_time=start + size,
                                    value=(pane["left"], pane["right"]),
                                    count=1,
                                    size_bytes=64.0,
                                    created_at=instance.sim.now,
                                ))
                                self.joins_emitted += 1
                            instance.state.add_bytes(group.key_group,
                                                     -pane["bytes"])
                            instance.state.delete(group.key_group, pane_key)
                        start += slide
                    floor[1] = start
                    continue
            min_live = math.inf
            for entry_key, pane in list(group.entries.items()):
                if not (isinstance(entry_key, tuple)
                        and entry_key[0] == "join"):
                    continue
                start = entry_key[1]
                if start + self.size > timestamp:
                    if start < min_live:
                        min_live = start
                    continue
                if pane.get("left", 0) and pane.get("right", 0):
                    outputs.append(Record(
                        key=("join", group.key_group, start),
                        key_group=None,
                        event_time=start + self.size,
                        value=(pane["left"], pane["right"]),
                        count=1,
                        size_bytes=64.0,
                        created_at=instance.sim.now,
                    ))
                    self.joins_emitted += 1
                instance.state.add_bytes(group.key_group,
                                         -pane["bytes"])
                instance.state.delete(group.key_group, entry_key)
            if floor is None:
                fire_floor[group.key_group] = [group.version, min_live]
            else:
                floor[0] = group.version
                floor[1] = min_live
        return outputs
