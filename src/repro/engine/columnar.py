"""Columnar (numpy-backed) views over the batched record plane.

The ``"columnar"`` record plane is the batched plane plus vectorized
bookkeeping: wire carriers (:class:`~.records.RecordBatch`) expose their
member fields as numpy column arrays, ship-batch formation computes its
cumulative serialize times with one ``np.add.accumulate`` instead of a
Python accumulation loop, and fan-out partitioning of keyed members uses a
stable ``np.argsort``/``np.bincount`` split.  Everything here is a *view* or
a bit-identical re-expression of the scalar arithmetic:

- ``np.add.accumulate`` on a float64 array performs the same left-to-right
  IEEE-754 additions as the scalar loop, so ship/visibility times match the
  per-record plane to the last bit;
- partitioning uses a stable sort, so per-target member order equals the
  order a sequential routing loop would produce;
- records keep their individual identity (ids, lineage, per-record delivery
  times): explode sites operate on ``batch.records`` and never consult the
  column cache.

numpy is an *optional* dependency (CI runs without it): when unavailable,
``HAVE_NUMPY`` is False, column views return None, and every helper falls
back to the scalar path.  The ``"columnar"`` plane then degrades to exactly
the ``"batched"`` plane — configurations stay portable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # pragma: no cover - exercised implicitly by both CI matrices
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "BatchColumns", "cumulative_ship_times",
           "partition_by_target"]


class BatchColumns:
    """Immutable column arrays over one carrier's member records.

    Built lazily by :meth:`~.records.RecordBatch.columns`; the arrays are a
    snapshot of per-member scalar fields (member identity and mutable
    payloads stay in the ``Record`` objects).  ``key_group`` uses -1 for
    not-yet-keyed members.
    """

    __slots__ = ("n", "event_time", "count", "size_bytes", "key_group",
                 "visible_time")

    def __init__(self, records, visible_times=None):
        if _np is None:  # pragma: no cover - numpy-less fallback
            raise RuntimeError("BatchColumns requires numpy")
        n = len(records)
        self.n = n
        event_time = _np.empty(n, dtype=_np.float64)
        count = _np.empty(n, dtype=_np.int64)
        size_bytes = _np.empty(n, dtype=_np.float64)
        key_group = _np.empty(n, dtype=_np.int64)
        for i, rec in enumerate(records):
            event_time[i] = rec.event_time
            count[i] = rec.count
            size_bytes[i] = rec.size_bytes
            kg = rec.key_group
            key_group[i] = -1 if kg is None else kg
        self.event_time = event_time
        self.count = count
        self.size_bytes = size_bytes
        self.key_group = key_group
        if visible_times is not None:
            self.visible_time = _np.asarray(visible_times,
                                            dtype=_np.float64)
        else:
            self.visible_time = None

    @property
    def total_count(self) -> int:
        """Physical records across all members (int sums are exact)."""
        return int(self.count.sum())


def cumulative_ship_times(sizes: Sequence[float], start: float,
                          bandwidth: float) -> List[float]:
    """Per-member ship-completion times for a run of serialized sizes.

    Bit-identical to the scalar accumulation ``s += size / bandwidth`` the
    per-record drainer performs: the per-member serialize durations are
    computed element-wise first (same ``size / bandwidth`` division), then
    accumulated left-to-right.  Falls back to the scalar loop without
    numpy, or for runs too short to amortize array construction.
    """
    n = len(sizes)
    if _np is not None and n >= 8:
        ser = _np.asarray(sizes, dtype=_np.float64) / bandwidth
        ser[0] += start
        return _np.add.accumulate(ser).tolist()
    out = []
    s = start
    for size in sizes:
        s += size / bandwidth
        out.append(s)
    return out


def partition_by_target(key_groups: Sequence[int],
                        table: Sequence[int]) -> dict:
    """Split member indices by routing target, preserving member order.

    ``key_groups`` holds each member's key-group; ``table`` maps key-group
    -> target index (dense list or array).  Returns ``{target: [member
    indices...]}`` with per-target indices ascending — exactly the
    per-target arrival order a sequential ``for member: route(member)``
    loop produces, courtesy of the stable sort.
    """
    if _np is not None and len(key_groups) >= 8:
        kgs = _np.asarray(key_groups, dtype=_np.int64)
        targets = _np.asarray(table, dtype=_np.int64)[kgs]
        order = _np.argsort(targets, kind="stable")
        sorted_targets = targets[order]
        counts = _np.bincount(sorted_targets)
        out = {}
        pos = 0
        for target, c in enumerate(counts.tolist()):
            if c:
                out[target] = order[pos:pos + c].tolist()
                pos += c
        return out
    out: dict = {}
    for i, kg in enumerate(key_groups):
        target = table[kg]
        bucket = out.get(target)
        if bucket is None:
            out[target] = [i]
        else:
            bucket.append(i)
    return out


def columns_available() -> bool:
    """True when the columnar plane can actually vectorize (numpy found)."""
    return HAVE_NUMPY
