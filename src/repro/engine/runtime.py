"""Execution runtime: expands a job graph onto a cluster and runs it.

:class:`StreamJob` is the piece every scaling controller manipulates:

* it owns the physical instances and channels,
* it tracks the *current* key-group assignment of every keyed operator,
* it can add instances and channels **at runtime** (on-the-fly scaling), and
* it exposes the state-transfer and checkpoint cost models.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..simulation.kernel import Simulator
from .channels import Channel, InputChannel
from .cluster import ClusterModel, LinkSpec, NodeSpec, single_machine
from .graph import EdgeSpec, JobGraph, OperatorSpec
from .keys import KeyGroupAssignment
from .metrics import MetricsCollector
from .operators import OperatorInstance
from .records import (CheckpointBarrier, EndOfStream, LatencyMarker, Record,
                      StreamElement, Watermark)
from .routing import OutputEdge, Partitioning
from .state import StateStatus, StateTransferCostModel

__all__ = ["JobConfig", "StreamJob", "SourceInstance", "_InflightState"]


@dataclass
class JobConfig:
    """Engine tunables shared by every run."""

    #: Output-cache capacity per channel, in elements (batches).
    outbox_capacity: int = 32
    #: Input-cache (credit) capacity per channel, in elements.
    inbox_capacity: int = 32
    #: Snapshot write bandwidth (bytes/s) for checkpoints.
    snapshot_bandwidth: float = 400e6
    #: Fraction of snapshot time that blocks processing (aligned sync part).
    snapshot_sync_fraction: float = 0.05
    #: Time to provision a new instance (container start, task deploy) —
    #: part of the paper's inherent overhead L_o.
    instance_init_seconds: float = 0.5
    #: State transfer cost model (extraction + network).
    transfer: StateTransferCostModel = field(
        default_factory=StateTransferCostModel)
    #: Concurrent state transfers sharing one host's NIC/disk; with the
    #: default transfer bandwidth fraction this caps aggregate state traffic
    #: at roughly the host link rate.
    max_concurrent_transfers_per_host: int = 4
    #: Record plane: ``"batched"`` moves micro-batches end-to-end through
    #: the source→channel→operator hot loop (bit-identical semantics,
    #: golden-trace enforced); ``"columnar"`` is the batched plane plus
    #: numpy-backed column views over each batch (vectorized window-pane
    #: accumulation and batch formation — falls back to plain batched
    #: behaviour when numpy is unavailable); ``"single"`` is the
    #: per-record reference implementation.
    record_plane: str = "batched"
    #: Upper bound on records per micro-batch; credits and channel
    #: occupancy shrink actual batches below this.
    max_batch_size: int = 64
    #: Kernel event scheduler: ``"heap"`` (binary heap) or ``"calendar"``
    #: (calendar-queue / bucketed wheel — same dispatch order
    #: bit-identically, faster at paper-scale timer populations).
    scheduler: str = "heap"
    #: Keyed state backend: ``"dict"`` (reference full-copy store,
    #: synchronous checkpoint cost proportional to state size) or
    #: ``"changelog"`` (append-only delta logs; checkpoints cut delta
    #: segments uploaded asynchronously off the barrier path, so the
    #: synchronous barrier cost is a small constant manifest).
    state_backend: str = "dict"
    #: Changelog backends fold their logs into a durable base every this
    #: many mutations (bounds the delta tail a restore must replay).
    changelog_materialize_interval: int = 4096
    #: Hard per-group log bound for changelog backends — exceeding it
    #: forces a materialization (truncation).
    changelog_max_log_entries: int = 8192
    #: Worker processes for the sharded multi-process kernel
    #: (:mod:`repro.simulation.sharded`).  ``1`` (the default) runs the
    #: ordinary single-process kernel; ``None`` reads ``REPRO_SHARDS``
    #: (defaulting to 1).  Values > 1 only take effect on plain
    #: run-to-completion workloads — controllers / telemetry / fault
    #: injection degrade to single-process execution.
    shards: Optional[int] = None
    #: Inbox (credit) capacity used for cut-crossing channels when a run is
    #: sharded: the benches and ``repro shard-check`` substitute this for
    #: ``inbox_capacity`` on *both* the sharded run and its single-process
    #: equivalence reference, so the credit-ledger certification has
    #: headroom on cut edges (the paper-tier Twitch session->loyalty cut
    #: needs > the default 32).  ``None`` reads ``REPRO_SHARD_INBOX``
    #: (defaulting to 512).  Per-cut-edge overrides can be attached to the
    #: partition plan (:meth:`~..engine.routing.ShardPlan.annotate_cuts`).
    shard_inbox_capacity: Optional[int] = None
    #: Cut-edge transport for the sharded kernel: ``"shm"`` (shared-memory
    #: columnar frame rings with demand-driven null messages and adaptive
    #: quantum), ``"pipe"`` (the legacy pickle-over-pipe protocol with a
    #: fixed quantum and eager nulls), or ``"auto"`` (shm when the
    #: platform supports it, else pipe).  ``None`` reads
    #: ``REPRO_SHARD_TRANSPORT`` (defaulting to ``"auto"``).
    shard_transport: Optional[str] = None

    #: Legal record planes / schedulers / batch-size bounds (also enforced
    #: by :class:`~..experiments.harness.ExperimentConfig` overrides).
    RECORD_PLANES = ("batched", "single", "columnar")
    SCHEDULERS = ("heap", "calendar")
    STATE_BACKENDS = ("dict", "changelog")
    SHARD_TRANSPORTS = ("auto", "shm", "pipe")
    MAX_BATCH_SIZE_LIMIT = 4096
    MAX_SHARDS = 64
    MAX_SHARD_INBOX = 1 << 20
    DEFAULT_SHARD_INBOX = 512

    def __post_init__(self):
        if self.record_plane not in self.RECORD_PLANES:
            raise ValueError(
                f"unknown record_plane: {self.record_plane!r} "
                f"(expected one of: {', '.join(self.RECORD_PLANES)})")
        if self.state_backend not in self.STATE_BACKENDS:
            raise ValueError(
                f"unknown state_backend: {self.state_backend!r} "
                f"(expected one of: {', '.join(self.STATE_BACKENDS)})")
        if (not isinstance(self.changelog_materialize_interval, int)
                or isinstance(self.changelog_materialize_interval, bool)
                or self.changelog_materialize_interval < 1):
            raise ValueError(
                "changelog_materialize_interval must be a positive "
                f"integer, got {self.changelog_materialize_interval!r}")
        if (not isinstance(self.changelog_max_log_entries, int)
                or isinstance(self.changelog_max_log_entries, bool)
                or self.changelog_max_log_entries < 1):
            raise ValueError(
                "changelog_max_log_entries must be a positive integer, "
                f"got {self.changelog_max_log_entries!r}")
        if self.scheduler not in self.SCHEDULERS:
            raise ValueError(
                f"unknown scheduler: {self.scheduler!r} "
                f"(expected one of: {', '.join(self.SCHEDULERS)})")
        if (not isinstance(self.max_batch_size, int)
                or isinstance(self.max_batch_size, bool)
                or not 1 <= self.max_batch_size <= self.MAX_BATCH_SIZE_LIMIT):
            raise ValueError(
                "max_batch_size must be an integer in "
                f"[1, {self.MAX_BATCH_SIZE_LIMIT}], "
                f"got {self.max_batch_size!r}")
        if self.shards is None:
            raw = os.environ.get("REPRO_SHARDS", "1")
            try:
                self.shards = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_SHARDS must be an integer, got {raw!r}") from None
        if (not isinstance(self.shards, int)
                or isinstance(self.shards, bool)
                or not 1 <= self.shards <= self.MAX_SHARDS):
            raise ValueError(
                f"shards must be an integer in [1, {self.MAX_SHARDS}], "
                f"got {self.shards!r}")
        if self.shard_inbox_capacity is None:
            raw = os.environ.get("REPRO_SHARD_INBOX",
                                 str(self.DEFAULT_SHARD_INBOX))
            try:
                self.shard_inbox_capacity = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_SHARD_INBOX must be an integer, "
                    f"got {raw!r}") from None
        if (not isinstance(self.shard_inbox_capacity, int)
                or isinstance(self.shard_inbox_capacity, bool)
                or not 1 <= self.shard_inbox_capacity
                <= self.MAX_SHARD_INBOX):
            raise ValueError(
                "shard_inbox_capacity must be an integer in "
                f"[1, {self.MAX_SHARD_INBOX}], "
                f"got {self.shard_inbox_capacity!r}")
        if self.shard_transport is None:
            self.shard_transport = os.environ.get(
                "REPRO_SHARD_TRANSPORT", "auto")
        if self.shard_transport not in self.SHARD_TRANSPORTS:
            raise ValueError(
                f"unknown shard_transport: {self.shard_transport!r} "
                f"(expected one of: {', '.join(self.SHARD_TRANSPORTS)})")


@dataclass
class _InflightState:
    """One key-group's bytes while they are on the wire between instances.

    Registered in :attr:`StreamJob.inflight_state` by
    ``ScalingController._transfer_group`` at the instant the entries leave
    the source backend (status → ``MIGRATED_OUT``) and popped when they are
    installed at the destination.  While registered, the bytes exist
    *nowhere else* — checkpoints fold them into the source's snapshot and
    rollbacks restore them at the source.
    """

    op_name: str
    key_group: int
    entries: dict
    size_bytes: float
    sub_groups_present: Optional[set]
    src_name: str
    src_index: int
    dst_index: int


class SourceInstance(OperatorInstance):
    """A source subtask: pulls from an admission queue, emits downstream.

    The admission queue models the Kafka topic / internal generator: the
    workload generator calls :meth:`offer` (never blocking — Kafka is
    durable) and the source consumes as fast as downstream backpressure
    allows.  Element ``created_at``/``emitted_at`` is stamped at *admission*,
    so end-to-end latency includes queue wait, as in §V-A.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.pending: Deque[StreamElement] = deque()
        self.injected: Deque[StreamElement] = deque()
        self.emitted_records = 0
        #: Elements consumed from the admission queue (the replay offset).
        self.consumed_elements = 0
        self._history: Optional[List[StreamElement]] = None
        #: Replay offset of ``_history[0]`` — grows as old history is
        #: trimmed away once no retained checkpoint can rewind past it.
        self._history_base = 0

    def enable_replay_history(self) -> None:
        """Keep every admitted element so the source can be rewound
        (checkpoint-recovery support).  Off by default: retention costs
        memory proportional to the run."""
        if self._history is None:
            self._history = list(self.pending)
            self._history_base = self.consumed_elements

    def rewind_to(self, offset: int) -> None:
        """Rewind consumption to ``offset`` admitted elements (replay)."""
        if self._history is None:
            raise RuntimeError("replay history not enabled on this source")
        if not self._history_base <= offset \
                <= self._history_base + len(self._history):
            raise ValueError(f"offset {offset} out of range")
        self.pending = deque(self._history[offset - self._history_base:])
        self.consumed_elements = offset
        self.wake.fire()

    def trim_history_before(self, offset: int) -> int:
        """Drop replay history for offsets below ``offset``; returns the
        number of elements released.  Rewinding past the trim point then
        raises, so callers must only trim below every offset they may
        still restore (the RecoveryManager's oldest retained checkpoint).
        """
        if self._history is None:
            return 0
        drop = min(max(offset - self._history_base, 0), len(self._history))
        if drop:
            del self._history[:drop]
            self._history_base += drop
        return drop

    def offer(self, element: StreamElement) -> None:
        """Admit one element from the workload generator."""
        now = self.sim.now
        if isinstance(element, Record):
            element.created_at = now
        elif isinstance(element, LatencyMarker):
            element.emitted_at = now
        self.pending.append(element)
        if self._history is not None:
            self._history.append(element)
        self.wake.fire()

    def inject(self, element: StreamElement) -> None:
        """Inject a control element (checkpoint barrier) ahead of data."""
        self.injected.append(element)
        self.wake.fire()

    @property
    def backlog(self) -> int:
        return len(self.pending)

    def _run(self):
        while self.running:
            if self.paused:
                yield self.wake.wait()
                continue
            if self._inband:
                fn = self._inband.pop(0)
                yield from fn(self)
                continue
            if self.injected:
                element = self.injected.popleft()
                yield from self.handle_element(None, element)
                continue
            if not self.pending:
                yield self.wake.wait()
                continue
            element = self.pending.popleft()
            self.consumed_elements += 1
            is_record = element.is_record
            if is_record and self._history is not None:
                # Stamp the consistent-cut lineage (see Record.src_seq).
                # Replay re-consumes the same element objects at the same
                # indices, so the stamp is stable across rewinds.
                element.src_origin = self.name
                element.src_seq = self.consumed_elements - 1
            cost = self.service_time(element.count if is_record else 1)
            if cost > 0:
                yield cost  # bare-delay yield == sim.timeout(cost)
                if self.abandon_work:
                    # A failure struck mid-service: the rewind will
                    # re-deliver this element, so emitting it now would
                    # double-count it downstream.
                    continue
            if is_record:
                ev = self.router.emit_record_fast(element)
                if ev is not None:
                    yield ev
                else:
                    yield from self.router.emit(element)
                self.emitted_records += element.count
                self.metrics.record_source_output(self.sim.now,
                                                  element.count)
                telemetry = self.job.telemetry
                if telemetry is not None:
                    telemetry.registry.counter(
                        "source.records_emitted",
                        operator=self.spec.name).inc(element.count)
            elif isinstance(element, EndOfStream):
                yield from self.router.emit(element)
                self.running = False
            else:
                yield from self.handle_element(None, element)


class StreamJob:
    """A deployed, runnable dataflow."""

    def __init__(self, graph: JobGraph,
                 cluster: Optional[ClusterModel] = None,
                 sim: Optional[Simulator] = None,
                 metrics: Optional[MetricsCollector] = None,
                 config: Optional[JobConfig] = None):
        graph.validate()
        self.graph = graph
        self.cluster = cluster or single_machine()
        self.config = config or JobConfig()
        self.sim = sim or Simulator(scheduler=self.config.scheduler)
        self.metrics = metrics or MetricsCollector()
        if self.config.record_plane not in JobConfig.RECORD_PLANES:
            raise ValueError(
                f"unknown record_plane: {self.config.record_plane!r} "
                f"(expected one of: {', '.join(JobConfig.RECORD_PLANES)})")
        #: True while the micro-batched record plane is active ("batched"
        #: and "columnar" both ride the batch carriers).  Cleared
        #: (permanently) by :meth:`disable_batching` — fault injection and
        #: failure recovery need per-record visibility everywhere.
        self._batching = self.config.record_plane in ("batched", "columnar")
        #: True when the columnar plane is selected *and* numpy is present:
        #: channels vectorize batch-formation ship times, carriers expose
        #: column views.  Without numpy the "columnar" plane degrades to
        #: exactly the "batched" plane (same bits either way).
        from .columnar import HAVE_NUMPY
        self.columnar_active = (self.config.record_plane == "columnar"
                                and HAVE_NUMPY)
        self._instances: Dict[str, List[OperatorInstance]] = {}
        #: Current (authoritative) key-group assignment per keyed operator.
        self.assignments: Dict[str, KeyGroupAssignment] = {}
        self._snapshots: List[Tuple[float, str, int]] = []
        self._built = False
        #: In-band scaling-signal dispatcher, installed by the active
        #: scaling controller: ``generator(instance, channel, signal)``.
        self.signal_router = None
        #: Optional hook receiving ``(instance, barrier)`` on every
        #: snapshot — the RecoveryManager's retention point.
        self.snapshot_listener = None
        #: Additional ``(instance, barrier)`` snapshot observers (e.g. the
        #: CheckpointCoordinator's completion tracker).  Kept separate from
        #: :attr:`snapshot_listener` for compatibility with callers that
        #: assign the single slot directly.
        self.snapshot_listeners: List = []
        #: Count of scaling operations currently in flight (any controller).
        self.scaling_active = 0
        #: Scaling controllers with an operation in flight, registered by
        #: ``ScalingController._run_scale`` — the RecoveryManager asks these
        #: to abort when a failure strikes mid-scaling.
        self.active_scalers: List = []
        #: Key-group state currently on the wire between two instances:
        #: ``(op name, key group) -> _InflightState``.  Registered when a
        #: transfer extracts the bytes from the source, popped when they are
        #: installed at the destination — so a checkpoint taken mid-transfer
        #: can fold the migrating bytes into the source's snapshot (§IV-C),
        #: and an aborted transfer can be rolled back.
        self.inflight_state: Dict[Tuple[str, int], "_InflightState"] = {}
        #: Optional hook ``(flight, dst_instance)`` called when a migrating
        #: key-group's bytes install at their destination — the
        #: RecoveryManager's fold-race closer (§IV-C).
        self.flight_landed_hook = None
        #: Optional hook ``(instance, record)`` called for every record an
        #: instance is about to apply — the RecoveryManager's record-level
        #: checkpoint compensation (a record whose key-group was already
        #: captured for a retained checkpoint it precedes must be
        #: re-injected on restore).  None costs one attribute load.
        self.record_capture_listener = None
        #: Optional predicate ``(instance, element) -> bool`` consulted
        #: before popping an *auxiliary*-lane element: True parks it until
        #: the instance has aligned the checkpoints the element postdates
        #: (auxiliary lanes bypass barrier alignment, so without the hold a
        #: post-barrier record could leak into a pre-barrier snapshot).
        self.aux_hold_hook = None
        #: Callables ``() -> List[(op_name, record)]`` that *remove and
        #: return* records parked in scaling-internal buffers outside any
        #: channel (e.g. DRRS re-route managers) — swept by failure
        #: recovery so pre-checkpoint records stranded there are restored.
        self.aux_sweep_hooks: List = []
        #: Optional hook ``(src, dst, key_group) -> extra_seconds`` invoked
        #: while a state transfer holds its NIC slot — the fault injector's
        #: transfer-stall point.  None (the default) costs one attribute
        #: load and draws no events.
        self.transfer_fault_hook = None
        #: Optional hook ``(instance, segment) -> extra_seconds`` invoked
        #: while an asynchronous changelog-segment upload is in flight —
        #: the fault injector's upload-stall point.
        self.checkpoint_upload_hook = None
        #: Changelog delta segments cut at snapshot time:
        #: ``(instance name, checkpoint id) -> ChangelogSegment``.  Only
        #: populated by incremental backends.
        self.changelog_segments: Dict[Tuple[str, int], object] = {}
        #: Segments cut but whose asynchronous upload has not finished —
        #: a checkpoint is not complete while any of its keys are here.
        self.pending_uploads: set = set()
        #: Observers ``(instance_name, checkpoint_id, segment)`` called
        #: when an asynchronous segment upload finishes (the coordinator's
        #: and RecoveryManager's completion re-check point).
        self.upload_listeners: List = []
        #: Event set by the RecoveryManager for the duration of a recovery
        #: (pause → restore → resume); scaling retries wait on it so they
        #: do not race the restore.  None when no recovery is in flight.
        self.recovery_barrier = None
        self._transfer_gates: Dict[str, object] = {}
        #: Telemetry bundle (registry + tracer), or None when disabled.
        #: Hot paths guard every recording with ``if telemetry is not None``
        #: so the disabled default costs one attribute load per site.
        self.telemetry = None

    def enable_telemetry(self, capacity: int = 200_000,
                         sample_interval: Optional[float] = None):
        """Attach a :class:`repro.telemetry.Telemetry` to this job.

        Installs the kernel dispatch probe, tags every existing channel
        (future channels are tagged at creation), and — only when
        ``sample_interval`` is given — starts the periodic queue-depth
        sampler.  Without the sampler, telemetry records at existing event
        boundaries only, so enabling it never changes simulated behaviour.
        Idempotent; returns the Telemetry.
        """
        if self.telemetry is not None:
            return self.telemetry
        from ..telemetry import Telemetry
        telemetry = Telemetry(self.sim, capacity=capacity)
        self.telemetry = telemetry
        self.sim.dispatch_probe = telemetry.on_kernel_event
        self.sim.discount_probe = telemetry.on_kernel_discount
        for instance in self.all_instances():
            for channel in instance.router.all_channels():
                channel.telemetry = telemetry
        if sample_interval is not None:
            telemetry.start_sampler(self, sample_interval)
        return telemetry

    def transfer_gate(self, node_name: str):
        """Per-host semaphore limiting concurrent state transfers."""
        from ..simulation.primitives import Semaphore
        gate = self._transfer_gates.get(node_name)
        if gate is None:
            gate = Semaphore(self.sim,
                             self.config.max_concurrent_transfers_per_host)
            self._transfer_gates[node_name] = gate
        return gate

    # -- construction -------------------------------------------------------------

    def build(self) -> "StreamJob":
        """Materialise instances and channels; idempotent."""
        if self._built:
            return self
        for spec in self.graph.operators.values():
            instances = []
            for index in range(spec.parallelism):
                instances.append(self._make_instance(spec, index))
            self._instances[spec.name] = instances
            if spec.keyed:
                assignment = KeyGroupAssignment(self.graph.num_key_groups,
                                                spec.parallelism)
                self.assignments[spec.name] = assignment
                for kg, owner in assignment.as_dict().items():
                    instances[owner].state.register_group(
                        kg, StateStatus.LOCAL,
                        size_bytes=spec.initial_state_bytes_per_group)
        for edge in self.graph.edges:
            self._wire_edge(edge)
        self._built = True
        return self

    def _make_instance(self, spec: OperatorSpec,
                       index: int) -> OperatorInstance:
        node = self.cluster.place()
        cls = SourceInstance if spec.is_source else OperatorInstance
        return cls(self.sim, self, spec, index, node, self.metrics)

    def _wire_edge(self, edge: EdgeSpec) -> None:
        dst_instances = self._instances[edge.dst]
        assignment = self.assignments.get(edge.dst)
        for sender in self._instances[edge.src]:
            out_edge = OutputEdge(
                name=edge.name,
                partitioning=edge.partitioning,
                num_key_groups=self.graph.num_key_groups,
                sender_index=sender.index)
            out_edge.dst_op = edge.dst
            for dst in dst_instances:
                self._connect(sender, out_edge, dst)
            if edge.partitioning is Partitioning.HASH:
                for kg, owner in assignment.as_dict().items():
                    out_edge.set_routing(kg, owner)
            sender.router.add_edge(out_edge)

    def _connect(self, sender: OperatorInstance, out_edge: OutputEdge,
                 dst: OperatorInstance) -> Channel:
        link = self.cluster.link(sender.node.name, dst.node.name)
        channel = Channel(
            self.sim, link,
            name=f"{sender.name}->{dst.name}",
            outbox_capacity=self.config.outbox_capacity,
            inbox_capacity=self.config.inbox_capacity)
        channel.sender = sender
        channel.telemetry = self.telemetry
        if self._batching:
            channel.batching = True
            channel.max_batch = self.config.max_batch_size
        channel._job = self
        input_channel = dst.add_input_channel(name=channel.name)
        channel.attach(input_channel)
        out_edge.add_channel(channel)
        return channel

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "StreamJob":
        self.build()
        for instances in self._instances.values():
            for instance in instances:
                instance.start()
        return self

    def run(self, until: Optional[float] = None) -> float:
        self.start()
        end = self.sim.run(until=until)
        if self._batching:
            # The per-record plane leaves every record whose service ended
            # by `until` fully applied; catch analytic batch application up
            # to the stop time so metrics reads between runs are identical.
            self._sync_batches()
        return end

    def stop(self) -> None:
        for instance in self.all_instances():
            instance.stop()

    # -- record-plane control ------------------------------------------------------

    def quiesce_batches(self) -> None:
        """Collapse all in-flight micro-batches to per-record state.

        Preempts active analytic batch executions (unfinished members go
        back to their input channels) and explodes batches queued at input
        channels; batches still on a wire explode at delivery (the deliver
        path re-checks the plane).  Formation gates check ``scaling_active``
        and channel flags live, so callers that need a per-record window
        (scaling, recovery, fault injection) quiesce once and the plane
        stays collapsed for as long as their gate holds.
        """
        now = self.sim.now
        instances = self.all_instances()
        for instance in instances:
            preempt = getattr(instance, "preempt_batch", None)
            if preempt is not None:
                preempt()
        # Sender side first: unwinding a mid-serialize ship batch truncates
        # the shared carrier, so the consumer-side materialize below sees
        # only the members that per-record serialization had committed.
        for instance in instances:
            for channel in instance.router.all_channels():
                channel.quiesce()
        for instance in instances:
            for input_channel in instance.input_channels:
                input_channel.materialize(now)

    def disable_batching(self) -> None:
        """Permanently fall back to the per-record reference plane.

        Installed by the fault injector and the recovery manager: record-
        window fault triggers and restore-time queue surgery need individual
        records everywhere.  Idempotent.
        """
        if not self._batching:
            return
        self._batching = False
        self.columnar_active = False
        for instance in self.all_instances():
            for channel in instance.router.all_channels():
                channel.batching = False
        self.quiesce_batches()

    def _sync_batches(self) -> None:
        """Apply the completed prefix of every active analytic batch."""
        for instance in self.all_instances():
            sync = getattr(instance, "sync_batch", None)
            if sync is not None:
                sync()

    def invalidate_routing_caches(self, op_name: str) -> None:
        """Drop every sender-side routing cache targeting ``op_name``.

        ``OutputEdge.set_routing`` already invalidates on each table write;
        this hook is the defense-in-depth sweep for bulk ownership swaps
        (DRRS re-routing table swap, ``abort_and_rollback`` restores).
        """
        for _sender, edge in self.senders_to(op_name):
            edge.invalidate_cache()

    # -- queries ------------------------------------------------------------------

    def instances(self, name: str) -> List[OperatorInstance]:
        return self._instances[name]

    def all_instances(self) -> List[OperatorInstance]:
        return [inst for group in self._instances.values()
                for inst in group]

    def sources(self) -> List[SourceInstance]:
        return [inst for spec in self.graph.sources()
                for inst in self._instances[spec.name]]

    def sink_logic(self, name: Optional[str] = None):
        sinks = self.graph.sinks()
        if name is None:
            if len(sinks) != 1:
                raise ValueError("specify the sink name explicitly")
            name = sinks[0].name
        return self._instances[name][0].logic

    def senders_to(self, op_name: str
                   ) -> List[Tuple[OperatorInstance, OutputEdge]]:
        """All (predecessor instance, output edge) pairs targeting an op."""
        result = []
        for src_name in self.graph.upstream_of(op_name):
            for sender in self._instances[src_name]:
                for edge in sender.router.edges:
                    if getattr(edge, "dst_op", None) == op_name:
                        result.append((sender, edge))
        return result

    def total_state_bytes(self, op_name: str) -> float:
        return sum(inst.state.total_bytes()
                   for inst in self._instances[op_name])

    # -- runtime rescaling support -------------------------------------------------

    def add_instance(self, op_name: str,
                     node: Optional[str] = None) -> OperatorInstance:
        """Create one new instance of ``op_name`` and wire all channels.

        The new instance's input channels from predecessors and output
        channels to successors are created immediately, but **no routing
        table points at it yet** — the scaling controller flips routing
        entries as part of its synchronization protocol.  The caller is
        responsible for ``instance.start()`` after the provisioning delay.
        """
        spec = self.graph.operators[op_name]
        index = len(self._instances[op_name])
        node_spec = self.cluster.place(preferred=node)
        cls = SourceInstance if spec.is_source else OperatorInstance
        instance = cls(self.sim, self, spec, index, node_spec, self.metrics)
        self._instances[op_name].append(instance)
        spec.parallelism = len(self._instances[op_name])

        # Channels from every predecessor instance.
        for sender, edge in self.senders_to(op_name):
            channel = self._connect(sender, edge, instance)
            # The new channel inherits the sender's output watermark so it
            # neither stalls nor prematurely advances the new instance.
            channel.input_channel.watermark = sender.current_watermark
        # Channels to every successor instance.
        for edge_spec in self.graph.out_edges(op_name):
            out_edge = OutputEdge(
                name=edge_spec.name,
                partitioning=edge_spec.partitioning,
                num_key_groups=self.graph.num_key_groups,
                sender_index=instance.index)
            out_edge.dst_op = edge_spec.dst
            for dst in self._instances[edge_spec.dst]:
                self._connect(instance, out_edge, dst)
            if edge_spec.partitioning is Partitioning.HASH:
                assignment = self.assignments[edge_spec.dst]
                for kg, owner in assignment.as_dict().items():
                    out_edge.set_routing(kg, owner)
            instance.router.add_edge(out_edge)
        return instance

    def remove_trailing_instances(self, op_name: str,
                                  keep: int) -> List[OperatorInstance]:
        """Decommission instances ``keep..`` of an operator (scale-in).

        Must only be called once every key-group has migrated off the
        removed instances and no data is routed to them: their feeding
        channels are closed and dropped from every predecessor's edge, and
        their own outgoing channels are closed.  Uniform repartitioning
        always removes the *trailing* instances, so edge channel lists stay
        index-aligned with instance indices.
        """
        instances = self._instances[op_name]
        if keep < 1 or keep > len(instances):
            raise ValueError(f"keep must be in [1, {len(instances)}]")
        removed = instances[keep:]
        if not removed:
            return []
        del instances[keep:]
        self.graph.operators[op_name].parallelism = keep
        for _sender, edge in self.senders_to(op_name):
            for channel in edge.channels[keep:]:
                channel.close()
            del edge.channels[keep:]
            edge.invalidate_cache()  # channels mutated in place
        for instance in removed:
            instance.stop()
            for channel in instance.router.all_channels():
                channel.close()
                # The receiver keeps the input channel (its queue may still
                # hold valid pre-decommission output) but it must no longer
                # hold back watermarks or end-of-stream alignment.
                if channel.input_channel is not None:
                    channel.input_channel.is_auxiliary = True
                    channel.input_channel.watermark = float("inf")
        return removed

    def create_direct_channel(self, src: OperatorInstance,
                              dst: OperatorInstance,
                              name_suffix: str = "reroute") -> Channel:
        """A dedicated runtime channel (re-routing / migration path).

        The receiving input channel is excluded from watermark aggregation;
        scaling handlers duplicate data-driven messages onto it explicitly
        when required (§III-A, compatibility discussion).
        """
        link = self.cluster.link(src.node.name, dst.node.name)
        channel = Channel(
            self.sim, link,
            name=f"{src.name}=>{dst.name}:{name_suffix}",
            outbox_capacity=self.config.outbox_capacity,
            inbox_capacity=self.config.inbox_capacity)
        channel.sender = src
        channel.telemetry = self.telemetry
        input_channel = dst.add_input_channel(name=channel.name)
        input_channel.watermark = float("inf")  # never the min
        input_channel.is_auxiliary = True
        channel.attach(input_channel)
        return channel

    def link_between(self, a: OperatorInstance,
                     b: OperatorInstance) -> LinkSpec:
        return self.cluster.link(a.node.name, b.node.name)

    # -- state backends & checkpoint support --------------------------------------

    def make_state_backend(self, spec):
        """Build the configured keyed-state backend for one instance."""
        from .state import ChangelogStateBackend, DictStateBackend
        if self.config.state_backend == "changelog":
            return ChangelogStateBackend(
                bytes_per_entry=spec.bytes_per_entry,
                materialize_interval=(
                    self.config.changelog_materialize_interval),
                max_log_entries=self.config.changelog_max_log_entries)
        return DictStateBackend(bytes_per_entry=spec.bytes_per_entry)

    def checkpoint_sync_cost(self, instance: OperatorInstance) -> float:
        """Seconds the barrier path blocks while the snapshot is cut.

        Full-copy backends serialize the whole state synchronously;
        incremental backends write a constant-size manifest and move the
        real bytes asynchronously (:meth:`_upload_segment`)."""
        state = instance.state
        sync_bytes = getattr(state, "checkpoint_sync_bytes",
                             state.total_bytes)()
        if sync_bytes <= 0:
            return 0.0
        full = sync_bytes / self.config.snapshot_bandwidth
        return full * self.config.snapshot_sync_fraction

    def note_snapshot(self, instance: OperatorInstance,
                      barrier: CheckpointBarrier) -> None:
        self._snapshots.append(
            (self.sim.now, instance.name, barrier.checkpoint_id))
        if self.telemetry is not None:
            self.telemetry.tracer.instant(
                "checkpoint.snapshot", category="checkpoint",
                track=instance.name, checkpoint_id=barrier.checkpoint_id,
                state_bytes=instance.state.total_bytes())
        # Cut + launch the async upload *before* the listeners run, so the
        # coordinator and RecoveryManager observe the pending upload when
        # they evaluate checkpoint completeness.
        if getattr(instance.state, "is_incremental", False):
            segment = instance.state.cut_segment(barrier.checkpoint_id)
            key = (instance.name, barrier.checkpoint_id)
            self.changelog_segments[key] = segment
            self.pending_uploads.add(key)
            self.sim.spawn(self._upload_segment(instance, segment))
        if self.snapshot_listener is not None:
            self.snapshot_listener(instance, barrier)
        for listener in self.snapshot_listeners:
            listener(instance, barrier)

    def _upload_segment(self, instance: OperatorInstance, segment):
        """Asynchronously ship one delta segment to durable storage.

        Upload time follows the cluster's default link through the
        transfer cost model, off the barrier path; the checkpoint
        completes only once every instance's segment has landed."""
        link = self.cluster.default_link
        cost = self.config.transfer.transfer_seconds(
            segment.delta_bytes, link.bandwidth, link.latency)
        span = None
        if self.telemetry is not None:
            span = self.telemetry.tracer.begin(
                "checkpoint.upload", category="checkpoint",
                track=instance.name, checkpoint_id=segment.checkpoint_id,
                delta_bytes=segment.delta_bytes)
        if cost > 0:
            yield cost
        hook = self.checkpoint_upload_hook
        if hook is not None:
            extra = hook(instance, segment)
            if extra and extra > 0:
                yield extra
        if span is not None:
            self.telemetry.tracer.end(span)
        key = (instance.name, segment.checkpoint_id)
        self.pending_uploads.discard(key)
        for listener in self.upload_listeners:
            listener(instance.name, segment.checkpoint_id, segment)
        # Listeners that retain segments (RecoveryManager) adopt them at
        # snapshot time; anything left here is nobody's — drop it.
        self.changelog_segments.pop(key, None)

    @property
    def snapshots(self) -> List[Tuple[float, str, int]]:
        return list(self._snapshots)
