"""Output-side routing: per-sender routing tables over keyed edges.

Every sender instance holds its *own copy* of the routing table for each
outgoing keyed edge — exactly the structure scaling signals coordinate: a
predecessor updates its private table and then emits barriers so downstream
can tell which records were routed with the old vs. new table.
"""

from __future__ import annotations

import enum
from typing import Dict, List, TYPE_CHECKING

from .channels import Channel
from .columnar import partition_by_target
from .keys import key_to_key_group
from .records import LatencyMarker, Record, StreamElement

if TYPE_CHECKING:  # pragma: no cover
    from .operators import OperatorInstance

__all__ = ["Partitioning", "OutputEdge", "OutputRouter", "ShardPlan",
           "partition_graph", "topological_order"]


class Partitioning(enum.Enum):
    FORWARD = "forward"        # 1:1 by instance index (chain)
    HASH = "hash"              # key-group routing table
    REBALANCE = "rebalance"    # round-robin
    BROADCAST = "broadcast"    # every element to every target


class OutputEdge:
    """One sender instance's view of an edge to a downstream operator.

    Keyed (HASH) lookups go through a key-group → channel cache; every
    routing-table or channel-list change (a re-route epoch, from this
    sender's perspective) must call :meth:`invalidate_cache` — done by
    :meth:`set_routing`/:meth:`add_channel`, and explicitly by runtime code
    that trims ``channels`` in place.
    """

    def __init__(self, name: str, partitioning: Partitioning,
                 num_key_groups: int = 0,
                 sender_index: int = 0):
        self.name = name
        self.partitioning = partitioning
        self.num_key_groups = num_key_groups
        self.sender_index = sender_index
        self.channels: List[Channel] = []
        #: key-group -> index into ``channels``; private to this sender.
        self.routing_table: Dict[int, int] = {}
        self._rr = 0
        #: key-group -> Channel, derived from routing_table + channels.
        self._channel_cache: Dict[int, Channel] = {}
        #: Dense ``key-group -> target index`` list for vectorized burst
        #: partitioning; rebuilt lazily after every routing change.
        self._dense_table = None

    def add_channel(self, channel: Channel) -> int:
        """Register a channel to a (possibly new) downstream instance."""
        self.channels.append(channel)
        self.invalidate_cache()
        return len(self.channels) - 1

    def set_routing(self, key_group: int, target_index: int) -> None:
        if not 0 <= target_index < len(self.channels):
            raise ValueError(
                f"target {target_index} out of range "
                f"({len(self.channels)} channels)")
        self.routing_table[key_group] = target_index
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        """Drop the key-group → channel cache (routing changed)."""
        self._channel_cache.clear()
        self._dense_table = None

    def channel_for_record(self, record: Record) -> Channel:
        partitioning = self.partitioning
        if partitioning is Partitioning.HASH:
            kg = record.key_group
            if kg is None:
                kg = key_to_key_group(record.key, self.num_key_groups)
                record.key_group = kg
            channel = self._channel_cache.get(kg)
            if channel is None:
                channel = self.channels[self.routing_table[kg]]
                self._channel_cache[kg] = channel
            return channel
        if partitioning is Partitioning.FORWARD:
            return self.channels[self.sender_index % len(self.channels)]
        if partitioning is Partitioning.REBALANCE:
            channel = self.channels[self._rr % len(self.channels)]
            self._rr += 1
            return channel
        raise ValueError(f"record on {partitioning} edge")

    def partition_burst(self, records) -> dict:
        """Columnar fan-out split: target channel index → member indices.

        The vectorized (stable ``np.argsort``/``np.bincount``) counterpart
        of calling :meth:`channel_for_record` on each record of a burst:
        per-target member order equals the sequential routing loop's
        arrival order exactly.  Key-groups are resolved (and stamped) the
        same way the scalar path resolves them; the routing table is
        densified once and cached until :meth:`invalidate_cache`.  HASH
        edges only.
        """
        if self.partitioning is not Partitioning.HASH:
            raise ValueError(f"partition_burst on {self.partitioning} edge")
        key_groups = []
        for record in records:
            kg = record.key_group
            if kg is None:
                kg = key_to_key_group(record.key, self.num_key_groups)
                record.key_group = kg
            key_groups.append(kg)
        table = self._dense_table
        if table is None:
            table = [0] * self.num_key_groups
            for kg, target in self.routing_table.items():
                table[kg] = target
            self._dense_table = table
        return partition_by_target(key_groups, table)

    def channel_for_marker(self, marker: LatencyMarker) -> Channel:
        if self.partitioning is Partitioning.HASH:
            kg = marker.key_group
            if kg is None:
                kg = key_to_key_group(marker.key, self.num_key_groups)
                marker.key_group = kg
            channel = self._channel_cache.get(kg)
            if channel is None:
                channel = self.channels[self.routing_table[kg]]
                self._channel_cache[kg] = channel
            return channel
        # Forward/rebalance/broadcast edges: pin markers to one path for
        # stable measurements.
        return self.channels[self.sender_index % len(self.channels)]


class OutputRouter:
    """All outgoing edges of one operator instance, with blocking emit."""

    def __init__(self, instance: "OperatorInstance"):
        self.instance = instance
        self.edges: List[OutputEdge] = []

    def add_edge(self, edge: OutputEdge) -> None:
        self.edges.append(edge)

    def emit_record_fast(self, record: Record):
        """Single-edge record emission without the generator machinery.

        Returns the one send event when this router has exactly one
        non-broadcast edge with channels — the overwhelmingly common record
        path — or ``None``, in which case the caller must fall back to
        :meth:`emit`.  Semantically identical to ``emit(record)``: same
        single ``channel_for_record`` + ``send`` call, minus one generator.
        """
        edges = self.edges
        if len(edges) == 1:
            edge = edges[0]
            if edge.partitioning is not Partitioning.BROADCAST \
                    and edge.channels:
                return edge.channel_for_record(record).send(record)
        return None

    def emit(self, element: StreamElement):
        """Generator: yields until the element is accepted everywhere.

        Records/markers go to exactly one channel per edge; watermarks and
        checkpoint barriers are broadcast to every channel of every edge
        (they must reach all downstream instances).
        """
        # ``abandon_work`` re-checks after every blocking yield: a sender
        # parked mid-broadcast when a failure-recovery teardown scrubbed
        # the channels must not push the remaining copies into the fresh
        # epoch (they belong to the rolled-back world).
        instance = self.instance
        if isinstance(element, Record):
            for edge in self.edges:
                if instance.abandon_work:
                    return
                if edge.partitioning is Partitioning.BROADCAST:
                    for channel in edge.channels:
                        yield channel.send(element)
                elif edge.channels:
                    yield edge.channel_for_record(element).send(element)
        elif isinstance(element, LatencyMarker):
            for edge in self.edges:
                if instance.abandon_work:
                    return
                if edge.channels:
                    yield edge.channel_for_marker(element).send(element)
        else:
            for edge in self.edges:
                for channel in edge.channels:
                    if instance.abandon_work:
                        return
                    yield channel.send(element)

    def emit_burst(self, outputs):
        """Generator: emit a sequence of outputs, fast-pathing records.

        Yields exactly what ``for out in outputs: yield from emit(out)``
        would, minus one generator allocation per record accepted on the
        single-edge fast path.  Window fires emit bursts of records at one
        watermark boundary — the hot caller.
        """
        for out in outputs:
            if out.is_record:
                ev = self.emit_record_fast(out)
                if ev is not None:
                    yield ev
                    continue
            yield from self.emit(out)

    def all_channels(self) -> List[Channel]:
        return [ch for edge in self.edges for ch in edge.channels]


# -- graph partitioning for the sharded kernel ---------------------------------

class ShardPlan:
    """A contiguous-in-topological-order partition of a job graph.

    Produced by :func:`partition_graph` and consumed by
    :class:`repro.simulation.sharded.ShardedSimulator`.  Each shard is a
    list of operator names; every edge between two shards (a *cut edge*)
    must have strictly positive latency — that latency is the conservative
    lookahead that lets the downstream shard run ahead of the upstream
    shard's grant.
    """

    def __init__(self, shards, cut_edges, lookahead, weights):
        #: Operator names per shard, in topological order.
        self.shards: List[List[str]] = shards
        #: ``op name -> shard index``.
        self.shard_of: Dict[str, int] = {
            name: i for i, ops in enumerate(shards) for name in ops}
        #: Names of edges that cross a shard boundary.
        self.cut_edges: List[str] = cut_edges
        #: Minimum latency over the cut edges (the binding lookahead).
        self.lookahead: float = lookahead
        #: The per-operator weights the balance was computed from.
        self.weights: Dict[str, float] = weights
        #: Per-cut-edge transport/flow-control hints, ``edge name ->
        #: {"ring_bytes": int, "inbox_capacity": int}`` (either key may be
        #: absent).  Filled by :meth:`annotate_cuts`; the sharded runner
        #: sizes each cut pair's shared-memory ring from the max
        #: ``ring_bytes`` over the pair's edges and replays the credit
        #: ledger (and configures the equivalence reference) with the
        #: per-edge ``inbox_capacity``.
        self.cut_hints: Dict[str, Dict[str, int]] = {}

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def annotate_cuts(self, ring_bytes=None, inbox_overrides=None) -> None:
        """Attach transport/capacity hints to this plan's cut edges.

        ``ring_bytes`` may be an int (applied to every cut edge) or an
        ``edge name -> int`` mapping; ``inbox_overrides`` maps edge names
        to per-edge inbox capacities.  Hints for edges that are not cut in
        this plan are ignored (a replan may cut different edges).
        """
        for name in self.cut_edges:
            hints = self.cut_hints.setdefault(name, {})
            if ring_bytes is not None:
                rb = (ring_bytes.get(name)
                      if isinstance(ring_bytes, dict) else ring_bytes)
                if rb is not None:
                    hints["ring_bytes"] = int(rb)
            if inbox_overrides and name in inbox_overrides:
                hints["inbox_capacity"] = int(inbox_overrides[name])

    def describe(self) -> str:
        parts = []
        for i, ops in enumerate(self.shards):
            w = sum(self.weights.get(op, 0.0) for op in ops)
            parts.append(f"shard {i}: {'+'.join(ops)} (w={w:g})")
        return "; ".join(parts)


def topological_order(graph) -> List[str]:
    """Deterministic topological order with all sources first.

    Kahn's algorithm over the graph's insertion order, seeding the ready
    queue with source operators ahead of other in-degree-zero operators —
    so a contiguous prefix partition always keeps every source (and
    therefore every workload generator) in shard 0.
    """
    indegree = {name: len(graph.in_edges(name))
                for name in graph.operators}
    ready = [name for name, spec in graph.operators.items()
             if indegree[name] == 0 and spec.is_source]
    ready += [name for name, spec in graph.operators.items()
              if indegree[name] == 0 and not spec.is_source]
    order = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        for edge in graph.out_edges(name):
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0:
                ready.append(edge.dst)
    if len(order) != len(graph.operators):
        raise ValueError("graph has a cycle; cannot topologically order")
    return order


def partition_graph(graph, num_shards: int, edge_latency,
                    weights: Optional[Dict[str, float]] = None) -> ShardPlan:
    """Cut the job graph into ``num_shards`` contiguous topological segments.

    ``edge_latency`` maps an :class:`~repro.engine.graph.EdgeSpec` to the
    *minimum* latency any of its physical channels can have; a boundary is
    legal only where every crossing edge has strictly positive latency
    (zero-latency edges admit no conservative lookahead).  ``weights`` maps
    operator names to relative host-cost weights — per-operator event
    counts from a telemetry probe when available, a uniform default
    otherwise — and the partition minimizes the maximum per-shard weight
    (classic contiguous min-max DP).  Fewer legal boundaries than requested
    shards clamps the shard count rather than failing.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    order = topological_order(graph)
    n = len(order)
    pos = {name: i for i, name in enumerate(order)}
    if weights is None:
        weights = {name: 1.0 for name in order}
    w = [max(float(weights.get(name, 1.0)), 1e-9) for name in order]
    prefix = [0.0]
    for x in w:
        prefix.append(prefix[-1] + x)

    # A boundary before position p is legal iff every edge spanning it has
    # positive latency, and p is past the source prefix (all sources and
    # their generators stay together in shard 0).
    num_source_prefix = 0
    for name in order:
        if graph.operators[name].is_source:
            num_source_prefix += 1
        else:
            break
    legal = [False] * (n + 1)
    for p in range(max(1, num_source_prefix), n):
        crossing = [e for e in graph.edges if pos[e.src] < p <= pos[e.dst]]
        legal[p] = all(edge_latency(e) > 0.0 for e in crossing)

    k = min(num_shards, 1 + sum(legal))
    # f[j][p]: minimal max-segment-weight splitting order[:p] into j segments.
    INF = float("inf")
    f = [[INF] * (n + 1) for _ in range(k + 1)]
    back = [[0] * (n + 1) for _ in range(k + 1)]
    f[0][0] = 0.0
    for j in range(1, k + 1):
        for p in range(1, n + 1):
            for q in range(0, p):
                if f[j - 1][q] == INF:
                    continue
                if q > 0 and not legal[q]:
                    continue
                cost = max(f[j - 1][q], prefix[p] - prefix[q])
                if cost < f[j][p]:
                    f[j][p] = cost
                    back[j][p] = q
    # Reconstruct the k-way split of the full order.
    bounds = []
    p = n
    for j in range(k, 0, -1):
        bounds.append(p)
        p = back[j][p]
    bounds.append(0)
    bounds.reverse()
    shards = [order[bounds[i]:bounds[i + 1]] for i in range(k)]
    shards = [s for s in shards if s]
    plan_shard_of = {name: i for i, ops in enumerate(shards) for name in ops}
    cut_edges, lookahead = [], float("inf")
    for e in graph.edges:
        if plan_shard_of[e.src] != plan_shard_of[e.dst]:
            cut_edges.append(e.name)
            lookahead = min(lookahead, edge_latency(e))
    if not cut_edges:
        lookahead = 0.0
    return ShardPlan(shards, cut_edges, lookahead,
                     {name: w[pos[name]] for name in order})
