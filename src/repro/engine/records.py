"""Stream elements: data records, watermarks, markers and barriers.

A :class:`Record` may represent a *batch* of physical records sharing one
key-group (``count`` > 1).  Batching is the knob that makes paper-scale input
rates (20 K tuples/s) tractable in a Python DES while preserving queueing
behaviour: service times, bytes on the wire and throughput accounting all
scale with ``count``, while control elements (watermarks, barriers, latency
markers) remain individual.

These classes are deliberately *not* dataclasses: they sit on the record
hot path, so they are plain ``__slots__`` classes with handwritten
constructors (no ``__dict__``, no descriptor-driven defaults; also required
for slots on Python 3.9, which lacks ``dataclass(slots=True)``).  Equality
is identity — distinct records are never field-equal anyway, since every
``Record``/``LatencyMarker`` carries a unique id.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = [
    "StreamElement",
    "Record",
    "RecordBatch",
    "Watermark",
    "LatencyMarker",
    "CheckpointBarrier",
    "ControlSignal",
    "EndOfStream",
]

_marker_ids = itertools.count()
_record_ids = itertools.count()


class StreamElement:
    """Base class for everything that travels on a stream."""

    __slots__ = ()

    #: Nominal serialized size in bytes (used for bandwidth modelling).
    size_bytes: float = 64.0

    #: True for data records (class-level: cheaper than isinstance chains).
    is_record: bool = False

    #: True for elements intra-channel scheduling must never cross.
    is_time_signal: bool = False


class Record(StreamElement):
    """A keyed data record (or batch of ``count`` records of one key-group).

    Attributes:
        key: the logical key; ``None`` for non-keyed streams.
        key_group: precomputed key-group index (``None`` until keyed).
        event_time: event-time timestamp in seconds.
        value: operator-defined payload.
        count: number of physical records this entity stands for.
        size_bytes: total serialized bytes for the batch.
        created_at: simulated time the record entered the system (source
            admission queue), used for end-to-end latency accounting.
    """

    __slots__ = ("key", "key_group", "event_time", "value", "count",
                 "size_bytes", "created_at", "record_id",
                 "src_origin", "src_seq")

    is_record = True

    def __init__(self, key: Any = None, key_group: Optional[int] = None,
                 event_time: float = 0.0, value: Any = None, count: int = 1,
                 size_bytes: float = 64.0, created_at: float = 0.0,
                 record_id: Optional[int] = None,
                 src_origin: Optional[str] = None,
                 src_seq: Optional[int] = None):
        self.key = key
        self.key_group = key_group
        self.event_time = event_time
        self.value = value
        self.count = count
        self.size_bytes = size_bytes
        self.created_at = created_at
        self.record_id = next(_record_ids) if record_id is None else record_id
        #: Consistent-cut lineage, stamped by sources only when replay
        #: history is on (failure recovery installed): the name of the
        #: source this record descends from and its consumption index
        #: there.  ``src_seq < checkpoint offset`` is exactly "on the
        #: pre-barrier side of that checkpoint's cut" — how recovery
        #: decides whether a record that bypassed barrier alignment
        #: (re-route lanes, rollback queues) belongs in a snapshot.
        self.src_origin = src_origin
        self.src_seq = src_seq

    def copy_with(self, **changes: Any) -> "Record":
        """A shallow copy with selected fields replaced (fresh record_id)."""
        fields = dict(
            key=self.key,
            key_group=self.key_group,
            event_time=self.event_time,
            value=self.value,
            count=self.count,
            size_bytes=self.size_bytes,
            created_at=self.created_at,
            src_origin=self.src_origin,
            src_seq=self.src_seq,
        )
        fields.update(changes)
        return Record(**fields)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Record(key={self.key!r}, key_group={self.key_group!r}, "
                f"event_time={self.event_time!r}, value={self.value!r}, "
                f"count={self.count!r}, size_bytes={self.size_bytes!r}, "
                f"created_at={self.created_at!r}, "
                f"record_id={self.record_id!r})")


class RecordBatch(StreamElement):
    """A micro-batch of :class:`Record` entities moving as one carrier.

    A transport/scheduling envelope, not a semantic unit: the records inside
    keep their individual identity (ids, lineage, per-record delivery times)
    and the batched plane must stay bit-identical to moving them one at a
    time.  Batches never cross a time signal (watermark/barrier) and are
    exploded back to individual records whenever a consumer, fault window or
    rescale re-routing window needs per-record visibility.

    Attributes:
        records: the member records, in channel FIFO order.
        visible_times: per-record times at which each member *would* have
            been delivered by the per-record plane (monotone non-decreasing).
            A member is visible to consumers once ``sim.now >= visible_times[i]``.
        next_index: consumption cursor — members below it are already popped.
        size_bytes: total serialized bytes (sum of member sizes).
    """

    __slots__ = ("records", "visible_times", "next_index", "size_bytes",
                 "_columns")

    def __init__(self, records, visible_times=None, size_bytes=None):
        self.records = records
        self.visible_times = visible_times
        self.next_index = 0
        if size_bytes is None:
            size_bytes = 0.0
            for rec in records:
                size_bytes += rec.size_bytes
        self.size_bytes = size_bytes
        self._columns = None

    def columns(self):
        """Lazy columnar (numpy) view of the member records.

        Returns a cached :class:`~.columnar.BatchColumns` snapshot, or
        ``None`` when numpy is unavailable.  The view covers *all* members
        (consumers index it with ``next_index``); it is built once per
        carrier and never mutated — membership of a batch is fixed at
        formation, only the consumption cursor moves.
        """
        cols = self._columns
        if cols is None:
            from .columnar import HAVE_NUMPY, BatchColumns
            if not HAVE_NUMPY:
                return None
            cols = BatchColumns(self.records, self.visible_times)
            self._columns = cols
        return cols

    def __len__(self) -> int:
        return len(self.records) - self.next_index

    @property
    def count(self) -> int:
        """Total physical records across unconsumed members."""
        total = 0
        for rec in self.records[self.next_index:]:
            total += rec.count
        return total

    def keys(self):
        """Keys of unconsumed members (lineage/debug view)."""
        return [rec.key for rec in self.records[self.next_index:]]

    def event_times(self):
        """Event times of unconsumed members (lineage/debug view)."""
        return [rec.event_time for rec in self.records[self.next_index:]]

    def lineage_span(self):
        """``(src_origin, first_seq, last_seq)`` when members share one
        origin and carry lineage, else ``None``."""
        recs = self.records[self.next_index:]
        if not recs:
            return None
        origin = recs[0].src_origin
        if origin is None:
            return None
        seqs = []
        for rec in recs:
            if rec.src_origin != origin or rec.src_seq is None:
                return None
            seqs.append(rec.src_seq)
        return (origin, min(seqs), max(seqs))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"RecordBatch(n={len(self.records)}, "
                f"next_index={self.next_index}, "
                f"size_bytes={self.size_bytes!r})")


class Watermark(StreamElement):
    """Event-time watermark: no later element carries event time < this."""

    __slots__ = ("timestamp", "size_bytes")

    is_time_signal = True

    def __init__(self, timestamp: float = 0.0, size_bytes: float = 16.0):
        self.timestamp = timestamp
        self.size_bytes = size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Watermark(timestamp={self.timestamp!r})"


class LatencyMarker(StreamElement):
    """End-to-end latency probe.

    Markers flow through the dataflow like records (so they see real queueing
    and suspension delays) but bypass windowing operators, matching the
    measurement methodology of §V-A.  They are keyed so keyed edges route them
    deterministically.
    """

    __slots__ = ("emitted_at", "key", "key_group", "size_bytes", "marker_id")

    def __init__(self, emitted_at: float = 0.0, key: Any = None,
                 key_group: Optional[int] = None, size_bytes: float = 16.0,
                 marker_id: Optional[int] = None):
        self.emitted_at = emitted_at
        self.key = key
        self.key_group = key_group
        self.size_bytes = size_bytes
        self.marker_id = next(_marker_ids) if marker_id is None else marker_id

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"LatencyMarker(emitted_at={self.emitted_at!r}, "
                f"key={self.key!r}, marker_id={self.marker_id!r})")


class CheckpointBarrier(StreamElement):
    """Aligned-checkpoint barrier (Chandy-Lamport style, as in Flink)."""

    __slots__ = ("checkpoint_id", "size_bytes")

    # Intra-channel scheduling must never reorder across a checkpoint
    # barrier: it defines the snapshot's consistent cut.
    is_time_signal = True

    def __init__(self, checkpoint_id: int = 0, size_bytes: float = 16.0):
        self.checkpoint_id = checkpoint_id
        self.size_bytes = size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CheckpointBarrier(checkpoint_id={self.checkpoint_id!r})"


class ControlSignal(StreamElement):
    """Base for scaling-related signals (trigger/confirm barriers)."""

    size_bytes: float = 16.0


class EndOfStream(StreamElement):
    """Marks the end of a finite stream (used by trace-driven workloads)."""

    __slots__ = ()

    size_bytes: float = 8.0
