"""Stream elements: data records, watermarks, markers and barriers.

A :class:`Record` may represent a *batch* of physical records sharing one
key-group (``count`` > 1).  Batching is the knob that makes paper-scale input
rates (20 K tuples/s) tractable in a Python DES while preserving queueing
behaviour: service times, bytes on the wire and throughput accounting all
scale with ``count``, while control elements (watermarks, barriers, latency
markers) remain individual.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "StreamElement",
    "Record",
    "Watermark",
    "LatencyMarker",
    "CheckpointBarrier",
    "ControlSignal",
    "EndOfStream",
]

_marker_ids = itertools.count()
_record_ids = itertools.count()


class StreamElement:
    """Base class for everything that travels on a stream."""

    __slots__ = ()

    #: Nominal serialized size in bytes (used for bandwidth modelling).
    size_bytes: float = 64.0

    @property
    def is_record(self) -> bool:
        return False

    @property
    def is_time_signal(self) -> bool:
        """True for elements intra-channel scheduling must never cross."""
        return False


@dataclass
class Record(StreamElement):
    """A keyed data record (or batch of ``count`` records of one key-group).

    Attributes:
        key: the logical key; ``None`` for non-keyed streams.
        key_group: precomputed key-group index (``None`` until keyed).
        event_time: event-time timestamp in seconds.
        value: operator-defined payload.
        count: number of physical records this entity stands for.
        size_bytes: total serialized bytes for the batch.
        created_at: simulated time the record entered the system (source
            admission queue), used for end-to-end latency accounting.
    """

    key: Any = None
    key_group: Optional[int] = None
    event_time: float = 0.0
    value: Any = None
    count: int = 1
    size_bytes: float = 64.0
    created_at: float = 0.0
    record_id: int = field(default_factory=lambda: next(_record_ids))

    @property
    def is_record(self) -> bool:
        return True

    def copy_with(self, **changes: Any) -> "Record":
        """A shallow copy with selected fields replaced."""
        fields = dict(
            key=self.key,
            key_group=self.key_group,
            event_time=self.event_time,
            value=self.value,
            count=self.count,
            size_bytes=self.size_bytes,
            created_at=self.created_at,
        )
        fields.update(changes)
        return Record(**fields)


@dataclass
class Watermark(StreamElement):
    """Event-time watermark: no later element carries event time < this."""

    timestamp: float = 0.0
    size_bytes: float = 16.0

    @property
    def is_time_signal(self) -> bool:
        return True


@dataclass
class LatencyMarker(StreamElement):
    """End-to-end latency probe.

    Markers flow through the dataflow like records (so they see real queueing
    and suspension delays) but bypass windowing operators, matching the
    measurement methodology of §V-A.  They are keyed so keyed edges route them
    deterministically.
    """

    emitted_at: float = 0.0
    key: Any = None
    key_group: Optional[int] = None
    size_bytes: float = 16.0
    marker_id: int = field(default_factory=lambda: next(_marker_ids))


@dataclass
class CheckpointBarrier(StreamElement):
    """Aligned-checkpoint barrier (Chandy-Lamport style, as in Flink)."""

    checkpoint_id: int = 0
    size_bytes: float = 16.0

    @property
    def is_time_signal(self) -> bool:
        # Intra-channel scheduling must never reorder across a checkpoint
        # barrier: it defines the snapshot's consistent cut.
        return True


class ControlSignal(StreamElement):
    """Base for scaling-related signals (trigger/confirm barriers)."""

    size_bytes: float = 16.0


@dataclass
class EndOfStream(StreamElement):
    """Marks the end of a finite stream (used by trace-driven workloads)."""

    size_bytes: float = 8.0
