"""The stream-processing-engine substrate (Flink-like, simulated)."""

from .channels import Channel, InputChannel
from .checkpoint import CheckpointCoordinator
from .cluster import (ClusterModel, LinkSpec, NodeSpec, single_machine,
                      swarm_cluster)
from .graph import EdgeSpec, JobGraph, OperatorSpec
from .introspection import (channel_rows, hot_instance, instance_rows,
                            job_summary, operator_rows)
from .keys import KeyGroupAssignment, key_to_key_group, uniform_ranges
from .metrics import MetricsCollector, percentile, series_mean, series_peak
from .operators import (DefaultInputHandler, FilterLogic, InputHandler,
                        KeyByLogic, KeyedReduceLogic, MapLogic,
                        OperatorInstance, OperatorLogic, PassThroughLogic,
                        SinkLogic)
from .recovery import RecoveryError, RecoveryManager
from .records import (CheckpointBarrier, ControlSignal, EndOfStream,
                      LatencyMarker, Record, StreamElement, Watermark)
from .routing import OutputEdge, OutputRouter, Partitioning
from .runtime import JobConfig, SourceInstance, StreamJob
from .state import (ChangelogChainError, ChangelogSegment,
                    ChangelogStateBackend, DictStateBackend,
                    KeyedStateBackend, KeyGroupState, StateBackend,
                    StateStatus, StateTransferCostModel)
from .windows import SlidingWindowAggregateLogic, WindowedJoinLogic

__all__ = [
    "Channel", "InputChannel", "CheckpointCoordinator",
    "ClusterModel", "LinkSpec", "NodeSpec", "single_machine", "swarm_cluster",
    "EdgeSpec", "JobGraph", "OperatorSpec",
    "channel_rows", "hot_instance", "instance_rows", "job_summary",
    "operator_rows",
    "KeyGroupAssignment", "key_to_key_group", "uniform_ranges",
    "MetricsCollector", "percentile", "series_mean", "series_peak",
    "DefaultInputHandler", "FilterLogic", "InputHandler", "KeyByLogic",
    "KeyedReduceLogic", "MapLogic", "OperatorInstance", "OperatorLogic",
    "PassThroughLogic", "SinkLogic",
    "CheckpointBarrier", "ControlSignal", "EndOfStream", "LatencyMarker",
    "Record", "StreamElement", "Watermark",
    "OutputEdge", "OutputRouter", "Partitioning",
    "JobConfig", "SourceInstance", "StreamJob",
    "RecoveryError", "RecoveryManager",
    "ChangelogChainError", "ChangelogSegment", "ChangelogStateBackend",
    "DictStateBackend", "KeyedStateBackend", "KeyGroupState",
    "StateBackend", "StateStatus", "StateTransferCostModel",
    "SlidingWindowAggregateLogic", "WindowedJoinLogic",
]
