"""Periodic aligned checkpointing (Flink-style), as a coordinator process.

Needed both as the substrate for Stop-Checkpoint-Restart scaling and for the
DRRS fault-tolerance-compatibility tests (§IV-C): a checkpoint barrier in
flight while scaling signals are injected must still yield a consistent
snapshot.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Set, Tuple

from .records import CheckpointBarrier
from .runtime import StreamJob

__all__ = ["CheckpointCoordinator"]


class CheckpointCoordinator:
    """Injects checkpoint barriers at the sources on a fixed interval.

    Two ledgers, matching the two ends of a checkpoint's life:

    * :attr:`triggered` — ``(time, id)`` recorded when the barriers are
      injected at the sources;
    * :attr:`completed` — ``(time, id)`` recorded when every live instance
      has taken its snapshot for that id (observed via the job's
      snapshot-listener hook), i.e. when the checkpoint is actually usable
      for recovery.

    With an incremental (changelog) backend a snapshot only *cuts* the
    delta segment — the bytes still have to reach durable storage.  The
    coordinator therefore also tracks the job's asynchronous uploads and
    declares a checkpoint complete only once every instance has both
    snapshotted *and* finished uploading its segment (delta-chain
    completeness: a checkpoint whose tail segment never landed must not
    be restored from).
    """

    def __init__(self, job: StreamJob, interval: float):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.job = job
        self.interval = interval
        self._ids = itertools.count(1)
        self.triggered: List[Tuple[float, int]] = []
        self.completed: List[Tuple[float, int]] = []
        #: checkpoint id -> names of instances whose snapshot has arrived.
        self._pending: Dict[int, Set[str]] = {}
        self._running = False
        self._installed = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._install()
        self.job.sim.spawn(self._loop(), name="checkpoint-coordinator")

    def stop(self) -> None:
        self._running = False

    def trigger_now(self) -> int:
        """Inject one checkpoint immediately; returns its id."""
        self._install()
        checkpoint_id = next(self._ids)
        if self.job.telemetry is not None:
            self.job.telemetry.tracer.instant(
                "checkpoint.trigger", category="checkpoint",
                track="checkpoint", checkpoint_id=checkpoint_id)
        self.triggered.append((self.job.sim.now, checkpoint_id))
        for source in self.job.sources():
            source.inject(CheckpointBarrier(checkpoint_id=checkpoint_id))
        return checkpoint_id

    # -- completion tracking ---------------------------------------------------

    def _install(self) -> None:
        if not self._installed:
            self._installed = True
            self.job.snapshot_listeners.append(self._on_snapshot)
            self.job.upload_listeners.append(self._on_upload)

    def _on_snapshot(self, instance, barrier: CheckpointBarrier) -> None:
        seen = self._pending.setdefault(barrier.checkpoint_id, set())
        seen.add(instance.name)
        self._maybe_complete(barrier.checkpoint_id)

    def _on_upload(self, instance_name: str, checkpoint_id: int,
                   segment) -> None:
        # A landing upload can unblock *later* checkpoints too (their
        # delta chains reference every earlier segment), so re-check all
        # pending ids oldest-first.  Ids already completed or discarded
        # are ignored.
        for cid in sorted(self._pending):
            self._maybe_complete(cid)

    def _maybe_complete(self, checkpoint_id: int) -> None:
        seen = self._pending.get(checkpoint_id)
        if seen is None:
            return
        needed = {inst.name for inst in self.job.all_instances()
                  if inst.running or inst.paused}
        if not seen >= needed:
            return
        if any(cid <= checkpoint_id
               for _, cid in self.job.pending_uploads):
            # A checkpoint's delta chain references every earlier
            # segment, so it is durable only once all uploads up to and
            # including its own id have landed.
            return
        del self._pending[checkpoint_id]
        self.completed.append((self.job.sim.now, checkpoint_id))

    def _loop(self):
        while self._running:
            yield self.job.sim.timeout(self.interval)
            if not self._running:
                return
            self.trigger_now()
