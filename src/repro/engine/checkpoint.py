"""Periodic aligned checkpointing (Flink-style), as a coordinator process.

Needed both as the substrate for Stop-Checkpoint-Restart scaling and for the
DRRS fault-tolerance-compatibility tests (§IV-C): a checkpoint barrier in
flight while scaling signals are injected must still yield a consistent
snapshot.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from .records import CheckpointBarrier
from .runtime import StreamJob

__all__ = ["CheckpointCoordinator"]


class CheckpointCoordinator:
    """Injects checkpoint barriers at the sources on a fixed interval."""

    def __init__(self, job: StreamJob, interval: float):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.job = job
        self.interval = interval
        self._ids = itertools.count(1)
        self.completed: List[Tuple[float, int]] = []
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.job.sim.spawn(self._loop(), name="checkpoint-coordinator")

    def stop(self) -> None:
        self._running = False

    def trigger_now(self) -> int:
        """Inject one checkpoint immediately; returns its id."""
        checkpoint_id = next(self._ids)
        if self.job.telemetry is not None:
            self.job.telemetry.tracer.instant(
                "checkpoint.trigger", category="checkpoint",
                track="checkpoint", checkpoint_id=checkpoint_id)
        for source in self.job.sources():
            source.inject(CheckpointBarrier(checkpoint_id=checkpoint_id))
        return checkpoint_id

    def _loop(self):
        while self._running:
            yield self.job.sim.timeout(self.interval)
            if not self._running:
                return
            checkpoint_id = self.trigger_now()
            self.completed.append((self.job.sim.now, checkpoint_id))
