"""Operator logic classes and the operator-instance runtime process.

An :class:`OperatorInstance` is one parallel subtask of an operator: a DES
process that pulls elements from its input channels through a *pluggable
input handler*, applies the operator logic, and pushes results through its
output router (blocking on backpressure).  The input handler is the hook the
paper's Scale Input Handler (B1) replaces during scaling; everything a
scaling mechanism needs — suspending, re-ordering, classifying barriers — is
expressed as an input-handler policy, so the vanilla engine is untouched in
non-scaling periods.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..simulation.kernel import Interrupt, Simulator, _At
from ..simulation.primitives import EdgeWake
from .channels import InputChannel
from .cluster import NodeSpec
from .metrics import MetricsCollector
from .records import (CheckpointBarrier, ControlSignal, EndOfStream,
                      LatencyMarker, Record, RecordBatch, StreamElement,
                      Watermark)
from .routing import OutputRouter
from .state import KeyedStateBackend

if TYPE_CHECKING:  # pragma: no cover
    from .graph import OperatorSpec
    from .runtime import StreamJob

__all__ = [
    "OperatorLogic",
    "MapLogic",
    "FilterLogic",
    "KeyByLogic",
    "KeyedReduceLogic",
    "PassThroughLogic",
    "SinkLogic",
    "InputHandler",
    "DefaultInputHandler",
    "OperatorInstance",
]


# ---------------------------------------------------------------------------
# Operator logic
# ---------------------------------------------------------------------------

class OperatorLogic:
    """User-level processing logic; one instance per parallel subtask."""

    #: True when ``on_record`` is safe to apply *analytically* at a batch
    #: member's precomputed service-end time: it must not read ``sim.now``
    #: (use the ``at_time`` of :meth:`on_record_at` instead) and must
    #: return no outputs (outputs would be emitted at batch end rather
    #: than at each record's own end — wrong send times).  Off by default;
    #: the engine then falls back to per-record processing for this logic.
    batch_eligible: bool = False

    #: Optional whole-batch application hook: a callable
    #: ``on_record_batch(records, lo, hi, instance)`` applying members
    #: ``records[lo:hi]`` in one call, or None (the default) to apply them
    #: via :meth:`on_record_at` one by one.  Implementations MUST be
    #: bit-identical to the member-by-member path — same state mutations in
    #: the same float-accumulation order — and, like :attr:`batch_eligible`,
    #: must emit nothing.  The instance still performs all per-member
    #: accounting (busy time, counters); this hook only replaces the logic
    #: application itself.
    on_record_batch = None

    def open(self, instance: "OperatorInstance") -> None:
        """Called once before the first element."""

    def on_record(self, record: Record,
                  instance: "OperatorInstance") -> List[StreamElement]:
        raise NotImplementedError

    def on_record_at(self, record: Record, instance: "OperatorInstance",
                     at_time: float) -> List[StreamElement]:
        """Batched-plane application of one record at time ``at_time``.

        ``at_time`` is the record's service-end time — under analytic batch
        execution it may differ from ``sim.now``.  Logics that timestamp
        side effects (e.g. sinks feeding metrics) override this; the
        default delegates to :meth:`on_record`.
        """
        return self.on_record(record, instance)

    def on_watermark(self, timestamp: float,
                     instance: "OperatorInstance") -> List[StreamElement]:
        """Called when the operator's combined watermark advances."""
        return []


class PassThroughLogic(OperatorLogic):
    """Identity operator (used by sources and tests)."""

    def on_record(self, record, instance):
        return [record]


class MapLogic(OperatorLogic):
    """Applies ``fn(record) -> record`` to every record."""

    def __init__(self, fn: Callable[[Record], Record]):
        self.fn = fn

    def on_record(self, record, instance):
        return [self.fn(record)]


class FilterLogic(OperatorLogic):
    """Keeps records for which ``predicate(record)`` is true.

    For batch records the ``pass_fraction`` thins the batch count instead,
    preserving throughput semantics.
    """

    def __init__(self, predicate: Callable[[Record], bool] = None,
                 pass_fraction: float = 1.0):
        self.predicate = predicate
        self.pass_fraction = pass_fraction

    def on_record(self, record, instance):
        if self.predicate is not None and not self.predicate(record):
            return []
        if self.pass_fraction >= 1.0:
            return [record]
        kept = max(1, int(round(record.count * self.pass_fraction)))
        return [record.copy_with(
            count=kept,
            size_bytes=record.size_bytes * kept / max(record.count, 1))]


class KeyByLogic(OperatorLogic):
    """Re-keys records: downstream hash edges will recompute key-groups."""

    def __init__(self, key_fn: Callable[[Record], Any]):
        self.key_fn = key_fn

    def on_record(self, record, instance):
        return [record.copy_with(key=self.key_fn(record), key_group=None)]


class KeyedReduceLogic(OperatorLogic):
    """Running per-key reduction with keyed state.

    ``reduce_fn(old_value, record) -> new_value``; emits the updated value
    when ``emit_updates`` is set.  State bytes grow with distinct keys and,
    optionally, with per-record ``state_bytes_per_record`` (modelling
    list/window state growth for sizing experiments).
    """

    def __init__(self, reduce_fn: Callable[[Any, Record], Any],
                 emit_updates: bool = True,
                 state_bytes_per_record: float = 0.0):
        self.reduce_fn = reduce_fn
        self.emit_updates = emit_updates
        self.state_bytes_per_record = state_bytes_per_record
        # Emitting logics produce outputs per record, which analytic batch
        # application cannot time correctly — only the silent form is
        # batch-safe (instance attribute shadows the class flag).
        self.batch_eligible = not emit_updates

    def on_record(self, record, instance):
        kg = record.key_group
        old = instance.state.get(kg, record.key)
        new = self.reduce_fn(old, record)
        instance.state.put(kg, record.key, new)
        if self.state_bytes_per_record:
            instance.state.add_bytes(
                kg, self.state_bytes_per_record * record.count)
        if not self.emit_updates:
            return []
        return [record.copy_with(value=new)]


class SinkLogic(OperatorLogic):
    """Terminal operator: counts arrivals and optionally collects output."""

    batch_eligible = True

    def __init__(self, collect: bool = False):
        self.collect = collect
        self.collected: List[Record] = []
        self.records_in = 0

    def on_record(self, record, instance):
        self.records_in += record.count
        instance.metrics.record_sink_input(instance.sim.now, record.count)
        if self.collect:
            self.collected.append(record)
        return []

    def on_record_at(self, record, instance, at_time):
        # Same as on_record, but the throughput sample is stamped with the
        # record's own service-end time rather than sim.now (which sits at
        # batch end during analytic application).
        self.records_in += record.count
        instance.metrics.record_sink_input(at_time, record.count)
        if self.collect:
            self.collected.append(record)
        return []


# ---------------------------------------------------------------------------
# Input handlers
# ---------------------------------------------------------------------------

class InputHandler:
    """Chooses the next element to deliver to the operator.

    ``poll`` must consume (pop) the chosen element from its input channel and
    return ``(channel, element)``, or ``None`` when nothing can be processed
    right now.  After a ``None``, :attr:`suspended` tells the instance whether
    the stall was a *suspension* (data present but unprocessable — counted in
    the paper's cumulative suspension time) or mere idleness.
    """

    def __init__(self, instance: "OperatorInstance"):
        self.instance = instance
        self.suspended = False

    def poll(self) -> Optional[Tuple[InputChannel, StreamElement]]:
        raise NotImplementedError

    def on_channel_added(self, channel: InputChannel) -> None:
        """Notification that a new input channel appeared (rescaling)."""


class DefaultInputHandler(InputHandler):
    """Flink-like default: round-robin over unblocked, non-empty channels."""

    def __init__(self, instance: "OperatorInstance"):
        super().__init__(instance)
        self._cursor = 0

    def poll(self):
        instance = self.instance
        channels = instance.input_channels
        if not channels:
            self.suspended = False
            return None
        n = len(channels)
        cursor = self._cursor % n
        saw_blocked_data = False
        for _ in range(n):
            channel = channels[cursor]
            cursor += 1
            if cursor == n:
                cursor = 0
            if channel.queue and channel._nbatches:
                head = channel.queue[0]
                if head.__class__ is RecordBatch:
                    vt = head.visible_times[head.next_index]
                    if vt > instance.sim._now:
                        # The head member is still "on the wire" in
                        # per-record terms: the channel reads as empty, and
                        # a wake is armed for the member's delivery time so
                        # an otherwise-idle instance is not stranded.
                        instance._note_invisible(vt)
                        continue
            if channel.block_tokens:
                if channel.queue:
                    saw_blocked_data = True
                continue
            if channel.queue:
                if channel.is_auxiliary:
                    # Auxiliary lanes bypass barrier alignment; recovery may
                    # park a post-barrier element until this instance has
                    # aligned the checkpoint it postdates.
                    hook = self.instance.job.aux_hold_hook
                    if hook is not None and hook(self.instance,
                                                 channel.queue[0]):
                        saw_blocked_data = True
                        continue
                self._cursor = cursor
                return channel, channel.pop()
        self.suspended = saw_blocked_data
        return None


# ---------------------------------------------------------------------------
# Operator instance runtime
# ---------------------------------------------------------------------------

#: Formation-scan sentinels: the channel is provably empty at the probed
#: boundary (poll would move on) / the poll outcome is ambiguous or
#: batch-breaking (formation must end at the previous boundary).
_SKIP = object()
_STOP = object()


def _consume_arrival_bound(ic: InputChannel, now: float) -> float:
    """Lower bound on when the next element can be *delivered* into ``ic``
    beyond what is already queued.

    Used by consume-batch formation to prove a channel stays empty through
    a future poll boundary.  Returns ``now`` when nothing is provable (an
    arrival time the sender side does not expose), which makes every
    boundary test fail — the conservative outcome.
    """
    backing = ic.channel
    if backing is None:
        return now  # direct-fed channel: arrivals are unknowable
    wire = backing._wire
    if wire:
        head = wire[0][0]
        if head.__class__ is RecordBatch:
            # The batch's members arrive at their per-record delivery
            # times; everything behind it on the FIFO wire arrives later.
            return head.visible_times[0]
        return now  # plain in-flight element: delivery time not exposed
    if backing._serializing is not None:
        # Wire empty: the serializing element (or the outbox behind it)
        # cannot be delivered before its ship completion + propagation.
        return backing._ship_due + backing.link.latency
    if backing._closed:
        return float("inf")
    if backing.outbox or backing._send_waiters:
        return now  # drainer stalled on flow control: resume time unknown
    # Nothing queued or in flight: any future send still pays propagation.
    return now + backing.link.latency


class OperatorInstance:
    """One parallel subtask: a DES process bound to a cluster node."""

    def __init__(self, sim: Simulator, job: "StreamJob",
                 spec: "OperatorSpec", index: int, node: NodeSpec,
                 metrics: MetricsCollector):
        self.sim = sim
        self.job = job
        self.spec = spec
        self.index = index
        self.node = node
        self.metrics = metrics
        self.logic: OperatorLogic = spec.logic_factory()
        self.input_channels: List[InputChannel] = []
        self.router = OutputRouter(self)
        make_backend = getattr(job, "make_state_backend", None)
        self.state = (make_backend(spec) if make_backend is not None else
                      KeyedStateBackend(bytes_per_entry=spec.bytes_per_entry))
        # Edge-triggered: safe because _run re-checks every wake condition
        # at the top of each iteration before parking (see EdgeWake docs).
        self.wake = EdgeWake(sim)
        self.input_handler: InputHandler = DefaultInputHandler(self)
        #: Scaling hook: called for control-lane signals.
        self.control_handler: Optional[Callable[
            [Optional[InputChannel], StreamElement], None]] = None
        #: Scaling hook: observes every element before normal handling and
        #: may swallow it (return True) — used for confirm barriers.
        self.element_interceptor: Optional[Callable[
            [InputChannel, StreamElement], bool]] = None

        self.running = False
        self.paused = False
        #: Set by failure-recovery teardown while the world is being
        #: scrubbed: an element already mid-service when the failure hit
        #: must be *discarded* on wake-up, not emitted — its effects are
        #: rolled back and it re-enters via source replay, so emitting it
        #: into the freshly flushed channels would double-deliver it.
        self.abandon_work = False
        self.current_watermark = float("-inf")
        #: Key-group currently being processed (migration must not extract
        #: a group mid-record).
        self.current_key_group = None
        #: True while an element is mid-flight through handle_element
        #: (used by drain-to-quiescence protocols).
        self.processing_element = False
        self.suspended_seconds = 0.0
        self.busy_seconds = 0.0
        self.records_processed = 0
        self._suspension_listener: Optional[Callable[
            [OperatorInstance, float, float], None]] = None
        self._eos_channels: set = set()
        self._pending_checkpoint: Dict[int, set] = {}
        self._inband: List = []
        self._process = None
        # Analytic consume-batch state (batched record plane).  Parallel
        # arrays over the batch members: the records themselves, their
        # service-end times, their source channels, and the poll cursor
        # value after each pick (so preemption can rewind the round-robin
        # to exactly where the per-record plane would stand).
        self._batch_records: Optional[List[Record]] = None
        self._batch_ends: Optional[List[float]] = None
        self._batch_channels: Optional[List[InputChannel]] = None
        self._batch_cursors: Optional[List[int]] = None
        self._batch_start = 0.0
        self._batch_applied = 0
        self._batch_pending_end = 0.0
        self._vis_wake_at: Optional[float] = None

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.spec.name}[{self.index}]"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{self.name} on {self.node.name}>"

    # -- wiring ---------------------------------------------------------------

    def add_input_channel(self, name: str = "") -> InputChannel:
        channel = InputChannel(self, name=name or f"in->{self.name}")
        # New channels must not hold back the watermark: start them at the
        # operator's current watermark (rescaling adds channels at runtime).
        if self.current_watermark > float("-inf"):
            channel.watermark = self.current_watermark
        self.input_channels.append(channel)
        self.input_handler.on_channel_added(channel)
        return channel

    def set_suspension_listener(self, listener) -> None:
        self._suspension_listener = listener

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.logic.open(self)
        self._process = self.sim.spawn(self._run(), name=self.name)

    def stop(self) -> None:
        self.running = False
        if self._batch_records is not None:
            self.preempt_batch()
        self.wake.fire()

    def pause(self) -> None:
        self.paused = True
        # The per-record plane pauses at the next element boundary; an
        # analytic batch must collapse to that same boundary.
        if self._batch_records is not None:
            self.preempt_batch()

    def resume(self) -> None:
        self.paused = False
        self.wake.fire()

    # -- control lane -----------------------------------------------------------

    def on_control(self, channel: Optional[InputChannel],
                   element: StreamElement) -> None:
        if self.control_handler is not None:
            self.control_handler(channel, element)

    def run_inband(self, fn) -> None:
        """Run generator-function ``fn(instance)`` in-band.

        The function executes inside the instance's main loop, strictly
        *between* elements — the injection point scaling coordinators need
        for atomically updating routing tables and emitting barriers.
        """
        self._inband.append(fn)
        if self._batch_records is not None:
            # Collapse an analytic batch so the injection lands at the next
            # element boundary, exactly where the per-record plane runs it.
            self.preempt_batch()
        self.wake.fire()

    # -- main loop ------------------------------------------------------------------

    def _run(self):
        sim = self.sim
        while self.running:
            if self.paused:
                yield self.wake.wait()
                continue
            if self._inband:
                fn = self._inband.pop(0)
                yield from fn(self)
                continue
            polled = self.input_handler.poll()
            if polled is None:
                if not self.running:
                    break
                suspended = self.input_handler.suspended
                start = self.sim.now
                yield self.wake.wait()
                if suspended:
                    self._note_suspension(start, self.sim.now)
                continue
            channel, element = polled
            self.processing_element = True
            try:
                if element.is_record and self.element_interceptor is None:
                    # Inlined copy of _handle_record (which stays the
                    # canonical version, used via handle_element for
                    # injected/in-band elements): records dominate the
                    # element mix, and inlining skips one generator
                    # allocation per record plus one frame per resumption.
                    count = element.count
                    cost = (self.spec.service_time * count
                            / self.node.speed)
                    job = self.job
                    if (cost > 0 and job._batching
                            and not job.scaling_active
                            and self.logic.batch_eligible
                            and not self._inband
                            and job.record_capture_listener is None
                            and job.aux_hold_hook is None
                            and type(self.input_handler)
                            is DefaultInputHandler
                            and self._try_form_batch(channel, element,
                                                     cost)):
                        yield from self._run_batch()
                        continue
                    self.current_key_group = element.key_group
                    try:
                        if cost > 0:
                            start = sim.now
                            yield cost
                            self.busy_seconds += sim.now - start
                            if self.abandon_work:
                                continue
                        self.records_processed += count
                        telemetry = self.job.telemetry
                        if telemetry is not None:
                            telemetry.registry.counter(
                                "records.processed",
                                operator=self.spec.name).inc(count)
                        listener = self.job.record_capture_listener
                        if listener is not None:
                            listener(self, element)
                        outputs = self.logic.on_record(element, self)
                    finally:
                        self.current_key_group = None
                    router = self.router
                    for out in outputs:
                        if out.is_record:
                            ev = router.emit_record_fast(out)
                            if ev is not None:
                                yield ev
                                continue
                        yield from router.emit(out)
                elif (element.__class__ is Watermark
                        and self.element_interceptor is None):
                    # Inlined copy of _handle_watermark (which stays the
                    # canonical version, used via handle_element for
                    # injected elements): with fan-in n only ~1/n arrivals
                    # advance the min over input channels, and the
                    # non-advancing majority then needs no generator frame,
                    # no dispatch isinstance chain and no yield machinery —
                    # on watermark-heavy graphs they are the second most
                    # common element after records.
                    ts = element.timestamp
                    if ts > channel.watermark:
                        channel.watermark = ts
                    channels = self.input_channels
                    new_wm = channels[0].watermark
                    for ch in channels:
                        if ch.watermark < new_wm:
                            new_wm = ch.watermark
                    if new_wm > self.current_watermark:
                        self.current_watermark = new_wm
                        outputs = self.logic.on_watermark(new_wm, self)
                        router = self.router
                        if outputs:
                            yield from router.emit_burst(outputs)
                        # Inlined router.emit broadcast: sends accepted
                        # immediately hand back the shared pre-succeeded
                        # event, which _resume would continue past
                        # synchronously anyway — only genuinely pending
                        # (backpressured) sends need the yield.
                        wm_out = Watermark(timestamp=new_wm)
                        done = sim.done
                        for edge in router.edges:
                            for ch in edge.channels:
                                if self.abandon_work:
                                    break
                                ev = ch.send(wm_out)
                                if ev is not done:
                                    yield ev
                            else:
                                continue
                            break
                else:
                    yield from self.handle_element(channel, element)
            finally:
                self.processing_element = False

    def _note_suspension(self, start: float, end: float) -> None:
        if end > start:
            self.suspended_seconds += end - start
            telemetry = self.job.telemetry
            if telemetry is not None:
                telemetry.tracer.complete(
                    "suspended", category="suspension", track=self.name,
                    start=start, end=end)
            if self._suspension_listener is not None:
                self._suspension_listener(self, start, end)

    def _note_invisible(self, when: float) -> None:
        """Arm a wake for the time a queued batch member becomes visible."""
        at = self._vis_wake_at
        if at is not None and at <= when:
            return
        self._vis_wake_at = when
        self.sim.call_at(when, self._vis_fire)

    def _vis_fire(self) -> None:
        self._vis_wake_at = None
        self.wake.fire()

    # -- analytic consume batches (batched record plane) ----------------------

    def _try_form_batch(self, first_channel: InputChannel, first: Record,
                        first_cost: float) -> bool:
        """Try to assemble an analytic consume-batch starting with ``first``.

        Replays the per-record plane's poll alternation forward in time: at
        each boundary (the previous record's service end) the round-robin
        outcome must be *provable* from state frozen in this dispatch —
        queued elements, in-batch visibility times, and lower bounds on the
        next wire arrival.  Formation stops at the first boundary where the
        outcome is ambiguous (possible unseen arrival, non-record head,
        exact-tie visibility) or batch-breaking (watermark/barrier/EOS at
        the head).  On success (>= 2 provable back-to-back records) the
        members are popped with their flow-control credits deferred to the
        per-record pop boundaries, the descriptor state is parked on the
        instance, and True is returned; otherwise no state is touched.
        """
        channels = self.input_channels
        # Fast reject: every pick comes from an element already queued at
        # formation time (the arrival bound can only prove emptiness, never
        # supply a record), so with all queues empty a second pick is
        # impossible and the scan below cannot succeed.  Forming is also a
        # pure perf choice (execution is bit-identical either way), so skip
        # shallow queues outright: a 2-member batch elides one heap event —
        # less than the formation scan costs.  A queued carrier means a
        # ship batch's worth of members is waiting; that is always worth
        # the scan.
        depth = 0
        for ch in channels:
            if ch._nbatches:
                depth = 2
                break
            depth += len(ch.queue)
        if depth < 2:
            return False
        handler = self.input_handler
        n = len(channels)
        max_size = self.job.config.max_batch_size
        if max_size < 2:
            return False
        sim = self.sim
        now = sim._now
        service_time = self.spec.service_time
        speed = self.node.speed
        records = [first]
        ends = [now + first_cost]
        chans = [first_channel]
        cursors = [handler._cursor]
        cursor = handler._cursor % n
        # Degenerate fast path: when exactly one channel holds queued
        # content and every other is blocked or empty, each round-robin
        # rotation provably lands on that channel as long as the boundary
        # stays below every empty channel's arrival bound — the per-
        # boundary scan collapses to two float compares per pick.  Ending
        # earlier than the general scan would (min_bound is position-
        # blind) only shortens the batch, which is always sound.
        run_general = True
        live = -1
        min_bound = float("inf")
        for ci in range(n):
            ch = channels[ci]
            if ch.block_tokens:
                continue
            if ch.queue:
                if live >= 0:
                    live = -2  # two live channels: general scan required
                    break
                live = ci
            else:
                bound = _consume_arrival_bound(ch, now)
                if bound < min_bound:
                    min_bound = bound
        if live == -1:
            return False  # nothing queued anywhere: no second pick exists
        if live >= 0:
            run_general = False
            lch = channels[live]
            q = lch.queue
            qlen = len(q)
            cursor = (live + 1) % n
            qi = 0
            bi = -1
            b = ends[0]
            while b < min_bound and len(records) < max_size:
                if qi >= qlen:
                    # Live channel exhausted and every other channel is
                    # empty: no further pick is provable (or possible).
                    break
                el = q[qi]
                if el.__class__ is RecordBatch:
                    if bi < 0:
                        bi = el.next_index
                    if bi >= len(el.records):
                        qi += 1
                        bi = -1
                        continue
                    vt = el.visible_times[bi]
                    if vt >= b:
                        break  # not yet delivered (or exact tie) at b
                    rec = el.records[bi]
                    bi += 1
                elif el.is_record:
                    rec = el
                    qi += 1
                else:
                    break  # watermark/barrier/EOS head ends the batch
                records.append(rec)
                b = b + service_time * rec.count / speed
                ends.append(b)
                chans.append(lch)
                cursors.append(cursor)
        # Per-channel virtual consumption pointer [queue index, member
        # index within a batch carrier; -1 = not yet resolved], and a
        # lazily-computed per-channel arrival bound (index = channel slot).
        if run_general:
            pointers: List[Optional[List[int]]] = [None] * n
            bounds: List[Optional[float]] = [None] * n
        while run_general and len(records) < max_size:
            b = ends[-1]
            picked = None
            scan = cursor
            for _ in range(n):
                ch = channels[scan]
                ci = scan
                scan += 1
                if scan == n:
                    scan = 0
                if ch.block_tokens:
                    # Block state is frozen through the batch window:
                    # block/unblock preempt any in-flight batch, so a
                    # formation-time snapshot is sound.
                    continue
                ptr = pointers[ci]
                if ptr is None:
                    ptr = pointers[ci] = [0, -1]
                qi, bi = ptr
                q = ch.queue
                qlen = len(q)
                head = None
                while qi < qlen:
                    el = q[qi]
                    if el.__class__ is RecordBatch:
                        if bi < 0:
                            bi = el.next_index
                        if bi >= len(el.records):
                            qi += 1
                            bi = -1
                            continue
                        vt = el.visible_times[bi]
                        if vt < b:
                            head = el.records[bi]
                        elif vt > b:
                            # Provably not yet delivered at b; everything
                            # behind it arrives later still.
                            head = _SKIP
                        else:
                            head = _STOP  # exact tie: dispatch order unknowable
                        break
                    head = el if el.is_record else _STOP
                    break
                ptr[0] = qi
                ptr[1] = bi
                if head is None:
                    # Virtual queue exhausted: need an arrival proof.
                    bound = bounds[ci]
                    if bound is None:
                        bound = bounds[ci] = _consume_arrival_bound(ch, now)
                    if b < bound:
                        continue  # provably still empty at b
                    picked = _STOP
                    break
                if head is _SKIP:
                    continue
                if head is _STOP:
                    picked = _STOP
                    break
                picked = (ci, ch, head)
                cursor = scan
                break
            if picked is None or picked is _STOP:
                break
            ci, ch, rec = picked
            ptr = pointers[ci]
            qi, bi = ptr
            el = ch.queue[qi]
            if el.__class__ is RecordBatch:
                bi += 1
                if bi >= len(el.records):
                    qi += 1
                    bi = -1
            else:
                qi += 1
            ptr[0] = qi
            ptr[1] = bi
            records.append(rec)
            ends.append(b + service_time * rec.count / speed)
            chans.append(ch)
            cursors.append(cursor)
        k = len(records)
        if k < 2:
            return False
        # ---- commit: pop members, defer their credits, park descriptor ----
        for i in range(1, k):
            ch = chans[i]
            q = ch.queue
            el = q[0]
            if el.__class__ is RecordBatch:
                el.next_index += 1
                if el.next_index == len(el.records):
                    q.popleft()
                    ch._nbatches -= 1
            else:
                q.popleft()
            backing = ch.channel
            if backing is not None:
                # The per-record plane returns this credit at the record's
                # poll boundary (= previous record's service end).
                backing.defer_credit(ends[i - 1])
        handler._cursor = cursors[-1]
        self._batch_records = records
        self._batch_ends = ends
        self._batch_channels = chans
        self._batch_cursors = cursors
        self._batch_start = now
        self._batch_applied = 0
        self._batch_pending_end = ends[-1]
        return True

    def _run_batch(self):
        """Sleep to the batch's final service end, then apply all members.

        A preemption (scaling quiesce, in-band injection, pause/stop,
        block/unblock) interrupts the sleep after :meth:`preempt_batch` has
        applied completed members, requeued unstarted ones and retargeted
        ``_batch_pending_end`` to the in-progress member's end — the loop
        re-parks until then.
        """
        while True:
            try:
                yield _At(self._batch_pending_end)
            except Interrupt:
                if self._batch_records is None:
                    return  # fully settled by the preemption
                continue
            records = self._batch_records
            if records is None:
                return
            self._apply_batch_prefix(len(records))
            self._clear_batch()
            return

    def _apply_batch_prefix(self, j: int) -> None:
        """Apply members ``[_batch_applied, j)`` at their own end times.

        Arithmetic mirrors the per-record hot path expression-for-
        expression (``end - prev`` is the same float subtraction the
        per-record ``sim.now - start`` performs), so counters stay
        bit-identical.
        """
        i = self._batch_applied
        if j <= i:
            return
        records = self._batch_records
        ends = self._batch_ends
        logic = self.logic
        telemetry = self.job.telemetry
        counter = None
        if telemetry is not None:
            counter = telemetry.registry.counter(
                "records.processed", operator=self.spec.name)
        prev = self._batch_start if i == 0 else ends[i - 1]
        busy = self.busy_seconds
        processed = self.records_processed
        batch_fn = logic.on_record_batch
        if batch_fn is not None:
            # Whole-batch application: the accounting loop stays per-member
            # (``end - prev`` is the same float subtraction sequence), the
            # logic applies the members in one call.
            lo = i
            while i < j:
                end = ends[i]
                busy = busy + (end - prev)
                count = records[i].count
                processed += count
                if counter is not None:
                    counter.inc(count)
                prev = end
                i += 1
            batch_fn(records, lo, j, self)
        else:
            while i < j:
                rec = records[i]
                end = ends[i]
                busy = busy + (end - prev)
                count = rec.count
                processed += count
                if counter is not None:
                    counter.inc(count)
                logic.on_record_at(rec, self, end)
                prev = end
                i += 1
        self.busy_seconds = busy
        self.records_processed = processed
        self._batch_applied = j

    def _clear_batch(self) -> None:
        self._batch_records = None
        self._batch_ends = None
        self._batch_channels = None
        self._batch_cursors = None
        self._batch_applied = 0
        self.current_key_group = None

    def sync_batch(self) -> None:
        """Apply members whose service end has passed (run() boundaries).

        Observers examining the world between ``Simulator.run`` calls see
        per-record-identical counters and sink samples; the rest of the
        batch stays armed for the next run.
        """
        records = self._batch_records
        if records is None:
            return
        now = self.sim._now
        ends = self._batch_ends
        n = len(records)
        j = self._batch_applied
        while j < n and ends[j] <= now:
            j += 1
        self._apply_batch_prefix(j)

    def preempt_batch(self) -> None:
        """Collapse an in-flight analytic batch at the current time.

        Members whose service completed are applied; members not yet
        started go back to the *front* of their channels (their deferred
        credits cancelled — on the per-record plane their pops never
        happened) and the poll cursor rewinds to the in-progress member's
        position.  The in-progress member keeps its original end time: the
        process is interrupted and re-parks until then, after which the
        main loop resumes per-record polling against real state.
        """
        records = self._batch_records
        if records is None:
            return
        now = self.sim._now
        ends = self._batch_ends
        n = len(records)
        j = self._batch_applied
        while j < n and ends[j] <= now:
            j += 1
        self._apply_batch_prefix(j)
        if j >= n:
            self._clear_batch()
            self._process.interrupt("batch-preempt")
            return
        chans = self._batch_channels
        for i in range(n - 1, j, -1):
            ch = chans[i]
            ch.queue.appendleft(records[i])
            backing = ch.channel
            if backing is not None:
                backing.cancel_deferred_credit(ends[i - 1])
        cursors = self._batch_cursors
        del records[j + 1:]
        del ends[j + 1:]
        del chans[j + 1:]
        del cursors[j + 1:]
        self.input_handler._cursor = cursors[j]
        self._batch_pending_end = ends[j]
        self.current_key_group = records[j].key_group
        self._process.interrupt("batch-preempt")

    # -- element handling ---------------------------------------------------------

    def service_time(self, count: int = 1) -> float:
        return self.spec.service_time * count / self.node.speed

    def handle_element(self, channel: Optional[InputChannel],
                       element: StreamElement):
        """Return an iterator that fully processes one element.

        A plain function returning the per-kind handler *generator* rather
        than a generator itself: callers ``yield from`` the result, and
        skipping the wrapper frame saves one frame walk on every resumption
        of the record hot path.  All callers iterate immediately, so running
        the dispatch logic at call time instead of first-``next`` is
        observably identical.
        """
        if self.element_interceptor is not None:
            if self.element_interceptor(channel, element):
                return iter(())
        # ``is_record`` is a class attribute (no isinstance call) — records
        # dominate the element mix, so this branch goes first and cheap.
        if element.is_record:
            return self._handle_record(element)
        if isinstance(element, Watermark):
            return self._handle_watermark(channel, element)
        if isinstance(element, LatencyMarker):
            return self._handle_marker(element)
        if isinstance(element, CheckpointBarrier):
            return self._handle_checkpoint_barrier(channel, element)
        if isinstance(element, ControlSignal):
            if getattr(self.job, "signal_router", None) is not None:
                return self.job.signal_router(self, channel, element)
            self.on_control(channel, element)
            return iter(())
        if isinstance(element, EndOfStream):
            return self._handle_eos(channel, element)
        return iter(())

    def _handle_record(self, record: Record):
        self.current_key_group = record.key_group
        try:
            count = record.count
            cost = self.spec.service_time * count / self.node.speed
            if cost > 0:
                start = self.sim.now
                yield cost  # bare-delay yield == sim.timeout(cost)
                self.busy_seconds += self.sim.now - start
                if self.abandon_work:
                    return
            self.records_processed += count
            telemetry = self.job.telemetry
            if telemetry is not None:
                telemetry.registry.counter(
                    "records.processed",
                    operator=self.spec.name).inc(count)
            listener = self.job.record_capture_listener
            if listener is not None:
                listener(self, record)
            outputs = self.logic.on_record(record, self)
        finally:
            self.current_key_group = None
        router = self.router
        for out in outputs:
            if out.is_record:
                ev = router.emit_record_fast(out)
                if ev is not None:
                    yield ev
                    continue
            yield from router.emit(out)

    def _handle_watermark(self, channel: Optional[InputChannel],
                          watermark: Watermark):
        if channel is not None:
            channel.note_watermark(watermark)
        channels = self.input_channels
        if channels:
            new_wm = channels[0].watermark
            for ch in channels:
                if ch.watermark < new_wm:
                    new_wm = ch.watermark
        else:
            new_wm = watermark.timestamp
        if new_wm > self.current_watermark:
            self.current_watermark = new_wm
            outputs = self.logic.on_watermark(new_wm, self)
            if outputs:
                yield from self.router.emit_burst(outputs)
            yield from self.router.emit(Watermark(timestamp=new_wm))

    def _handle_marker(self, marker: LatencyMarker):
        cost = self.service_time(1)
        if cost > 0:
            yield self.sim.timeout(cost)
            self.busy_seconds += cost
        if self.spec.is_sink:
            self.metrics.record_latency(self.sim.now,
                                        self.sim.now - marker.emitted_at)
        else:
            yield from self.router.emit(marker)

    def _handle_checkpoint_barrier(self, channel: Optional[InputChannel],
                                   barrier: CheckpointBarrier):
        """Aligned checkpointing: block the channel until all have arrived."""
        token = ("ckpt", barrier.checkpoint_id)
        seen = self._pending_checkpoint.setdefault(barrier.checkpoint_id,
                                                   set())
        if channel is not None:
            channel.block(token)
            seen.add(id(channel))
        needed = {id(ch) for ch in self.input_channels
                  if not ch.is_auxiliary}
        if seen >= needed or channel is None:
            # Alignment complete (or source-injected): snapshot and forward.
            del self._pending_checkpoint[barrier.checkpoint_id]
            sync_cost = self.job.checkpoint_sync_cost(self)
            if sync_cost > 0:
                telemetry = self.job.telemetry
                span = None
                if telemetry is not None:
                    span = telemetry.tracer.begin(
                        "checkpoint.sync", category="checkpoint",
                        track=self.name,
                        checkpoint_id=barrier.checkpoint_id)
                yield self.sim.timeout(sync_cost)
                if span is not None:
                    telemetry.tracer.end(span)
            self.job.note_snapshot(self, barrier)
            yield from self.router.emit(barrier)
            for ch in self.input_channels:
                ch.unblock(token)
            self.wake.fire()

    def _handle_eos(self, channel: Optional[InputChannel],
                    eos: EndOfStream):
        if channel is not None:
            self._eos_channels.add(id(channel))
        needed = {id(ch) for ch in self.input_channels
                  if not ch.is_auxiliary}
        if channel is None or self._eos_channels >= needed:
            yield from self.router.emit(eos)
            self.running = False
