"""Operator logic classes and the operator-instance runtime process.

An :class:`OperatorInstance` is one parallel subtask of an operator: a DES
process that pulls elements from its input channels through a *pluggable
input handler*, applies the operator logic, and pushes results through its
output router (blocking on backpressure).  The input handler is the hook the
paper's Scale Input Handler (B1) replaces during scaling; everything a
scaling mechanism needs — suspending, re-ordering, classifying barriers — is
expressed as an input-handler policy, so the vanilla engine is untouched in
non-scaling periods.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..simulation.kernel import Simulator
from ..simulation.primitives import EdgeWake
from .channels import InputChannel
from .cluster import NodeSpec
from .metrics import MetricsCollector
from .records import (CheckpointBarrier, ControlSignal, EndOfStream,
                      LatencyMarker, Record, StreamElement, Watermark)
from .routing import OutputRouter
from .state import KeyedStateBackend

if TYPE_CHECKING:  # pragma: no cover
    from .graph import OperatorSpec
    from .runtime import StreamJob

__all__ = [
    "OperatorLogic",
    "MapLogic",
    "FilterLogic",
    "KeyByLogic",
    "KeyedReduceLogic",
    "PassThroughLogic",
    "SinkLogic",
    "InputHandler",
    "DefaultInputHandler",
    "OperatorInstance",
]


# ---------------------------------------------------------------------------
# Operator logic
# ---------------------------------------------------------------------------

class OperatorLogic:
    """User-level processing logic; one instance per parallel subtask."""

    def open(self, instance: "OperatorInstance") -> None:
        """Called once before the first element."""

    def on_record(self, record: Record,
                  instance: "OperatorInstance") -> List[StreamElement]:
        raise NotImplementedError

    def on_watermark(self, timestamp: float,
                     instance: "OperatorInstance") -> List[StreamElement]:
        """Called when the operator's combined watermark advances."""
        return []


class PassThroughLogic(OperatorLogic):
    """Identity operator (used by sources and tests)."""

    def on_record(self, record, instance):
        return [record]


class MapLogic(OperatorLogic):
    """Applies ``fn(record) -> record`` to every record."""

    def __init__(self, fn: Callable[[Record], Record]):
        self.fn = fn

    def on_record(self, record, instance):
        return [self.fn(record)]


class FilterLogic(OperatorLogic):
    """Keeps records for which ``predicate(record)`` is true.

    For batch records the ``pass_fraction`` thins the batch count instead,
    preserving throughput semantics.
    """

    def __init__(self, predicate: Callable[[Record], bool] = None,
                 pass_fraction: float = 1.0):
        self.predicate = predicate
        self.pass_fraction = pass_fraction

    def on_record(self, record, instance):
        if self.predicate is not None and not self.predicate(record):
            return []
        if self.pass_fraction >= 1.0:
            return [record]
        kept = max(1, int(round(record.count * self.pass_fraction)))
        return [record.copy_with(
            count=kept,
            size_bytes=record.size_bytes * kept / max(record.count, 1))]


class KeyByLogic(OperatorLogic):
    """Re-keys records: downstream hash edges will recompute key-groups."""

    def __init__(self, key_fn: Callable[[Record], Any]):
        self.key_fn = key_fn

    def on_record(self, record, instance):
        return [record.copy_with(key=self.key_fn(record), key_group=None)]


class KeyedReduceLogic(OperatorLogic):
    """Running per-key reduction with keyed state.

    ``reduce_fn(old_value, record) -> new_value``; emits the updated value
    when ``emit_updates`` is set.  State bytes grow with distinct keys and,
    optionally, with per-record ``state_bytes_per_record`` (modelling
    list/window state growth for sizing experiments).
    """

    def __init__(self, reduce_fn: Callable[[Any, Record], Any],
                 emit_updates: bool = True,
                 state_bytes_per_record: float = 0.0):
        self.reduce_fn = reduce_fn
        self.emit_updates = emit_updates
        self.state_bytes_per_record = state_bytes_per_record

    def on_record(self, record, instance):
        kg = record.key_group
        old = instance.state.get(kg, record.key)
        new = self.reduce_fn(old, record)
        instance.state.put(kg, record.key, new)
        if self.state_bytes_per_record:
            instance.state.add_bytes(
                kg, self.state_bytes_per_record * record.count)
        if not self.emit_updates:
            return []
        return [record.copy_with(value=new)]


class SinkLogic(OperatorLogic):
    """Terminal operator: counts arrivals and optionally collects output."""

    def __init__(self, collect: bool = False):
        self.collect = collect
        self.collected: List[Record] = []
        self.records_in = 0

    def on_record(self, record, instance):
        self.records_in += record.count
        instance.metrics.record_sink_input(instance.sim.now, record.count)
        if self.collect:
            self.collected.append(record)
        return []


# ---------------------------------------------------------------------------
# Input handlers
# ---------------------------------------------------------------------------

class InputHandler:
    """Chooses the next element to deliver to the operator.

    ``poll`` must consume (pop) the chosen element from its input channel and
    return ``(channel, element)``, or ``None`` when nothing can be processed
    right now.  After a ``None``, :attr:`suspended` tells the instance whether
    the stall was a *suspension* (data present but unprocessable — counted in
    the paper's cumulative suspension time) or mere idleness.
    """

    def __init__(self, instance: "OperatorInstance"):
        self.instance = instance
        self.suspended = False

    def poll(self) -> Optional[Tuple[InputChannel, StreamElement]]:
        raise NotImplementedError

    def on_channel_added(self, channel: InputChannel) -> None:
        """Notification that a new input channel appeared (rescaling)."""


class DefaultInputHandler(InputHandler):
    """Flink-like default: round-robin over unblocked, non-empty channels."""

    def __init__(self, instance: "OperatorInstance"):
        super().__init__(instance)
        self._cursor = 0

    def poll(self):
        channels = self.instance.input_channels
        if not channels:
            self.suspended = False
            return None
        n = len(channels)
        cursor = self._cursor % n
        saw_blocked_data = False
        for _ in range(n):
            channel = channels[cursor]
            cursor += 1
            if cursor == n:
                cursor = 0
            if channel.block_tokens:
                if channel.queue:
                    saw_blocked_data = True
                continue
            if channel.queue:
                if channel.is_auxiliary:
                    # Auxiliary lanes bypass barrier alignment; recovery may
                    # park a post-barrier element until this instance has
                    # aligned the checkpoint it postdates.
                    hook = self.instance.job.aux_hold_hook
                    if hook is not None and hook(self.instance,
                                                 channel.queue[0]):
                        saw_blocked_data = True
                        continue
                self._cursor = cursor
                return channel, channel.pop()
        self.suspended = saw_blocked_data
        return None


# ---------------------------------------------------------------------------
# Operator instance runtime
# ---------------------------------------------------------------------------

class OperatorInstance:
    """One parallel subtask: a DES process bound to a cluster node."""

    def __init__(self, sim: Simulator, job: "StreamJob",
                 spec: "OperatorSpec", index: int, node: NodeSpec,
                 metrics: MetricsCollector):
        self.sim = sim
        self.job = job
        self.spec = spec
        self.index = index
        self.node = node
        self.metrics = metrics
        self.logic: OperatorLogic = spec.logic_factory()
        self.input_channels: List[InputChannel] = []
        self.router = OutputRouter(self)
        self.state = KeyedStateBackend(bytes_per_entry=spec.bytes_per_entry)
        # Edge-triggered: safe because _run re-checks every wake condition
        # at the top of each iteration before parking (see EdgeWake docs).
        self.wake = EdgeWake(sim)
        self.input_handler: InputHandler = DefaultInputHandler(self)
        #: Scaling hook: called for control-lane signals.
        self.control_handler: Optional[Callable[
            [Optional[InputChannel], StreamElement], None]] = None
        #: Scaling hook: observes every element before normal handling and
        #: may swallow it (return True) — used for confirm barriers.
        self.element_interceptor: Optional[Callable[
            [InputChannel, StreamElement], bool]] = None

        self.running = False
        self.paused = False
        #: Set by failure-recovery teardown while the world is being
        #: scrubbed: an element already mid-service when the failure hit
        #: must be *discarded* on wake-up, not emitted — its effects are
        #: rolled back and it re-enters via source replay, so emitting it
        #: into the freshly flushed channels would double-deliver it.
        self.abandon_work = False
        self.current_watermark = float("-inf")
        #: Key-group currently being processed (migration must not extract
        #: a group mid-record).
        self.current_key_group = None
        #: True while an element is mid-flight through handle_element
        #: (used by drain-to-quiescence protocols).
        self.processing_element = False
        self.suspended_seconds = 0.0
        self.busy_seconds = 0.0
        self.records_processed = 0
        self._suspension_listener: Optional[Callable[
            [OperatorInstance, float, float], None]] = None
        self._eos_channels: set = set()
        self._pending_checkpoint: Dict[int, set] = {}
        self._inband: List = []
        self._process = None

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.spec.name}[{self.index}]"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{self.name} on {self.node.name}>"

    # -- wiring ---------------------------------------------------------------

    def add_input_channel(self, name: str = "") -> InputChannel:
        channel = InputChannel(self, name=name or f"in->{self.name}")
        # New channels must not hold back the watermark: start them at the
        # operator's current watermark (rescaling adds channels at runtime).
        if self.current_watermark > float("-inf"):
            channel.watermark = self.current_watermark
        self.input_channels.append(channel)
        self.input_handler.on_channel_added(channel)
        return channel

    def set_suspension_listener(self, listener) -> None:
        self._suspension_listener = listener

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.logic.open(self)
        self._process = self.sim.spawn(self._run(), name=self.name)

    def stop(self) -> None:
        self.running = False
        self.wake.fire()

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False
        self.wake.fire()

    # -- control lane -----------------------------------------------------------

    def on_control(self, channel: Optional[InputChannel],
                   element: StreamElement) -> None:
        if self.control_handler is not None:
            self.control_handler(channel, element)

    def run_inband(self, fn) -> None:
        """Run generator-function ``fn(instance)`` in-band.

        The function executes inside the instance's main loop, strictly
        *between* elements — the injection point scaling coordinators need
        for atomically updating routing tables and emitting barriers.
        """
        self._inband.append(fn)
        self.wake.fire()

    # -- main loop ------------------------------------------------------------------

    def _run(self):
        sim = self.sim
        while self.running:
            if self.paused:
                yield self.wake.wait()
                continue
            if self._inband:
                fn = self._inband.pop(0)
                yield from fn(self)
                continue
            polled = self.input_handler.poll()
            if polled is None:
                if not self.running:
                    break
                suspended = self.input_handler.suspended
                start = self.sim.now
                yield self.wake.wait()
                if suspended:
                    self._note_suspension(start, self.sim.now)
                continue
            channel, element = polled
            self.processing_element = True
            try:
                if element.is_record and self.element_interceptor is None:
                    # Inlined copy of _handle_record (which stays the
                    # canonical version, used via handle_element for
                    # injected/in-band elements): records dominate the
                    # element mix, and inlining skips one generator
                    # allocation per record plus one frame per resumption.
                    self.current_key_group = element.key_group
                    try:
                        count = element.count
                        cost = (self.spec.service_time * count
                                / self.node.speed)
                        if cost > 0:
                            start = sim.now
                            yield cost
                            self.busy_seconds += sim.now - start
                            if self.abandon_work:
                                continue
                        self.records_processed += count
                        telemetry = self.job.telemetry
                        if telemetry is not None:
                            telemetry.registry.counter(
                                "records.processed",
                                operator=self.spec.name).inc(count)
                        listener = self.job.record_capture_listener
                        if listener is not None:
                            listener(self, element)
                        outputs = self.logic.on_record(element, self)
                    finally:
                        self.current_key_group = None
                    router = self.router
                    for out in outputs:
                        if out.is_record:
                            ev = router.emit_record_fast(out)
                            if ev is not None:
                                yield ev
                                continue
                        yield from router.emit(out)
                else:
                    yield from self.handle_element(channel, element)
            finally:
                self.processing_element = False

    def _note_suspension(self, start: float, end: float) -> None:
        if end > start:
            self.suspended_seconds += end - start
            telemetry = self.job.telemetry
            if telemetry is not None:
                telemetry.tracer.complete(
                    "suspended", category="suspension", track=self.name,
                    start=start, end=end)
            if self._suspension_listener is not None:
                self._suspension_listener(self, start, end)

    # -- element handling ---------------------------------------------------------

    def service_time(self, count: int = 1) -> float:
        return self.spec.service_time * count / self.node.speed

    def handle_element(self, channel: Optional[InputChannel],
                       element: StreamElement):
        """Return an iterator that fully processes one element.

        A plain function returning the per-kind handler *generator* rather
        than a generator itself: callers ``yield from`` the result, and
        skipping the wrapper frame saves one frame walk on every resumption
        of the record hot path.  All callers iterate immediately, so running
        the dispatch logic at call time instead of first-``next`` is
        observably identical.
        """
        if self.element_interceptor is not None:
            if self.element_interceptor(channel, element):
                return iter(())
        # ``is_record`` is a class attribute (no isinstance call) — records
        # dominate the element mix, so this branch goes first and cheap.
        if element.is_record:
            return self._handle_record(element)
        if isinstance(element, Watermark):
            return self._handle_watermark(channel, element)
        if isinstance(element, LatencyMarker):
            return self._handle_marker(element)
        if isinstance(element, CheckpointBarrier):
            return self._handle_checkpoint_barrier(channel, element)
        if isinstance(element, ControlSignal):
            if getattr(self.job, "signal_router", None) is not None:
                return self.job.signal_router(self, channel, element)
            self.on_control(channel, element)
            return iter(())
        if isinstance(element, EndOfStream):
            return self._handle_eos(channel, element)
        return iter(())

    def _handle_record(self, record: Record):
        self.current_key_group = record.key_group
        try:
            count = record.count
            cost = self.spec.service_time * count / self.node.speed
            if cost > 0:
                start = self.sim.now
                yield cost  # bare-delay yield == sim.timeout(cost)
                self.busy_seconds += self.sim.now - start
                if self.abandon_work:
                    return
            self.records_processed += count
            telemetry = self.job.telemetry
            if telemetry is not None:
                telemetry.registry.counter(
                    "records.processed",
                    operator=self.spec.name).inc(count)
            listener = self.job.record_capture_listener
            if listener is not None:
                listener(self, record)
            outputs = self.logic.on_record(record, self)
        finally:
            self.current_key_group = None
        router = self.router
        for out in outputs:
            if out.is_record:
                ev = router.emit_record_fast(out)
                if ev is not None:
                    yield ev
                    continue
            yield from router.emit(out)

    def _handle_watermark(self, channel: Optional[InputChannel],
                          watermark: Watermark):
        if channel is not None:
            channel.note_watermark(watermark)
        channels = self.input_channels
        if channels:
            new_wm = channels[0].watermark
            for ch in channels:
                if ch.watermark < new_wm:
                    new_wm = ch.watermark
        else:
            new_wm = watermark.timestamp
        if new_wm > self.current_watermark:
            self.current_watermark = new_wm
            outputs = self.logic.on_watermark(new_wm, self)
            for out in outputs:
                yield from self.router.emit(out)
            yield from self.router.emit(Watermark(timestamp=new_wm))

    def _handle_marker(self, marker: LatencyMarker):
        cost = self.service_time(1)
        if cost > 0:
            yield self.sim.timeout(cost)
            self.busy_seconds += cost
        if self.spec.is_sink:
            self.metrics.record_latency(self.sim.now,
                                        self.sim.now - marker.emitted_at)
        else:
            yield from self.router.emit(marker)

    def _handle_checkpoint_barrier(self, channel: Optional[InputChannel],
                                   barrier: CheckpointBarrier):
        """Aligned checkpointing: block the channel until all have arrived."""
        token = ("ckpt", barrier.checkpoint_id)
        seen = self._pending_checkpoint.setdefault(barrier.checkpoint_id,
                                                   set())
        if channel is not None:
            channel.block(token)
            seen.add(id(channel))
        needed = {id(ch) for ch in self.input_channels
                  if not ch.is_auxiliary}
        if seen >= needed or channel is None:
            # Alignment complete (or source-injected): snapshot and forward.
            del self._pending_checkpoint[barrier.checkpoint_id]
            sync_cost = self.job.checkpoint_sync_cost(self)
            if sync_cost > 0:
                telemetry = self.job.telemetry
                span = None
                if telemetry is not None:
                    span = telemetry.tracer.begin(
                        "checkpoint.sync", category="checkpoint",
                        track=self.name,
                        checkpoint_id=barrier.checkpoint_id)
                yield self.sim.timeout(sync_cost)
                if span is not None:
                    telemetry.tracer.end(span)
            self.job.note_snapshot(self, barrier)
            yield from self.router.emit(barrier)
            for ch in self.input_channels:
                ch.unblock(token)
            self.wake.fire()

    def _handle_eos(self, channel: Optional[InputChannel],
                    eos: EndOfStream):
        if channel is not None:
            self._eos_channels.add(id(channel))
        needed = {id(ch) for ch in self.input_channels
                  if not ch.is_auxiliary}
        if channel is None or self._eos_channels >= needed:
            yield from self.router.emit(eos)
            self.running = False
