"""Pre-PR benchmark numbers, recorded with this exact harness.

Measured at commit 17cc357 (the last commit before the hot-path overhaul)
by checking that commit out into a scratch worktree, copying this harness
in, and running it there.  Pre-PR and post-PR runs were *interleaved* on
the same machine and each number below is the best of 3 runs — single-box
wall-clock throughput fluctuates by well over 1.5x between batches, so
only same-session interleaved pairs give a defensible ratio.  ``repro
bench`` embeds these under ``pre_pr`` in the ``BENCH_*.json`` output and
reports ``speedup_vs_pre_pr`` against them, so the acceptance target
(>= 2x e2e records/sec) is checked against the same scenario and harness.

Recorded 2026-08-05.
"""

PRE_PR_BASELINE = {
    "kernel": {
        "full": {
            "timeout_storm": {"events": 100200, "wall_s": 0.1778,
                              "events_per_s": 563467.4},
            "callback_chain": {"callbacks": 100000, "wall_s": 0.1180,
                               "callbacks_per_s": 847815.6},
            "event_pingpong": {"rounds": 100000, "wall_s": 0.3697,
                               "rounds_per_s": 270522.1},
            "channel_throughput": {"elements": 100000, "wall_s": 1.4854,
                                   "elements_per_s": 67321.3,
                                   "kernel_events": 529178},
        },
        "smoke": {
            "timeout_storm": {"events": 10100, "wall_s": 0.0164,
                              "events_per_s": 614755.0},
            "callback_chain": {"callbacks": 20000, "wall_s": 0.0232,
                               "callbacks_per_s": 862406.9},
            "event_pingpong": {"rounds": 20000, "wall_s": 0.0721,
                               "rounds_per_s": 277207.5},
            "channel_throughput": {"elements": 20000, "wall_s": 0.2512,
                                   "elements_per_s": 79627.3,
                                   "kernel_events": 102944},
        },
    },
    "e2e": {
        "full": {
            "scenario": "nexmark-q7/quick/until=30",
            "source_records": 600000,
            "sink_records": 7386,
            "kernel_events": 102806,
            "wall_s": 0.6241,
            "records_per_sec": 961397.6,
            "events_per_sec": 164729.1,
        },
        "smoke": {
            "scenario": "nexmark-q7/quick/until=8",
            "source_records": 160000,
            "sink_records": 1786,
            "kernel_events": 26394,
            "wall_s": 0.1606,
            "records_per_sec": 996533.0,
            "events_per_sec": 164390.6,
        },
    },
}
