"""Microbenchmarks: kernel primitives, channel plane, end-to-end workload.

Every bench reports wall-clock throughput (operations or records per
second).  Simulated time is free — these measure how much *host* CPU one
simulated second costs, which is exactly what caps the workload sizes the
reproduction can explore.

The benches are deliberately deterministic in simulated behaviour: the same
scenario the e2e bench times is also covered by the golden-trace test, so a
perf patch that accidentally changes semantics fails the golden test rather
than silently shifting the numbers here.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Dict, List, Optional, Tuple

from ..engine.cluster import LinkSpec
from ..engine.records import Record
from ..simulation.kernel import Simulator
from ..simulation.primitives import Signal

__all__ = ["BENCH_SCALES", "run_kernel_bench", "run_e2e_bench",
           "bench_e2e_scenario", "write_bench_files", "compare_bench_docs",
           "config_mismatch_warnings", "format_config",
           "format_delta_table"]

#: Written into every bench document.  /2 added ``record_plane`` /
#: ``max_batch_size`` (the engine defaults the e2e scenario runs under)
#: and the ``stat`` used to reduce the repetitions.  /3 added the kernel
#: ``scheduler`` and ``columnar_available`` to ``config``, the
#: calendar-queue scheduler microbench (``timeout_storm_calendar``), and
#: the multi-scenario e2e results shape of the ``paper`` scale.  /4 added
#: ``shards`` / ``workers`` / ``inbox_capacity`` to ``config`` and the
#: sharded e2e result shape (``sharded`` sub-document per scenario when
#: the run uses more than one worker process).  /5 added
#: ``shard_transport`` to ``config`` and the sync-protocol counters to
#: the ``sharded`` sub-document (``transport``, null messages sent /
#: suppressed, grant rounds, cut-edge bytes shipped, per-shard blocked
#: waits, spills, fallbacks, adaptive-quantum trajectory).  The former
#: ``SHARD_INBOX_CAPACITY`` module constant is now
#: ``JobConfig.shard_inbox_capacity`` (env ``REPRO_SHARD_INBOX``).
BENCH_SCHEMA = "repro-bench/5"

#: Host-cost operator weights for the shard partitioner, calibrated by
#: profiling the paper-tier runs (per-record session-window work makes
#: event counts alone under-weight `session`).  Workloads not listed fall
#: back to telemetry event counts / uniform weights.
SHARD_WEIGHTS = {
    "twitch": {"twitch-source": 14, "parse": 22, "bot-filter": 19,
               "enrich": 18, "session": 30, "loyalty": 20,
               "twitch-sink": 4},
}

#: Named scales: ``smoke`` for CI, ``full`` for the recorded trajectory,
#: ``paper`` for the paper-scale floor tier (nightly / on-demand CI):
#: 600 simulated seconds of NEXMark Q7 and Q8 plus the 4M-event
#: (4000 tps x 1000 s) Twitch trace.
BENCH_SCALES = {
    "smoke": {"timeout_procs": 50, "timeout_rounds": 200,
              "callback_chain": 20_000, "pingpong_rounds": 20_000,
              "channel_elements": 20_000,
              "e2e": (("q7", 8.0),)},
    "full": {"timeout_procs": 100, "timeout_rounds": 1000,
             "callback_chain": 100_000, "pingpong_rounds": 100_000,
             "channel_elements": 100_000,
             "e2e": (("q7", 30.0),)},
    "paper": {"timeout_procs": 200, "timeout_rounds": 2000,
              "callback_chain": 200_000, "pingpong_rounds": 200_000,
              "channel_elements": 200_000,
              "e2e": (("q7", 600.0), ("q8", 600.0), ("twitch", 1000.0))},
}


def _timed(fn):
    """Run ``fn`` with the collector paused; returns (result, wall_s)."""
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    return result, wall


# ---------------------------------------------------------------------------
# Kernel benches
# ---------------------------------------------------------------------------

def bench_timeout_storm(procs: int, rounds: int,
                        scheduler: str = "heap") -> Dict[str, float]:
    """Many processes sleeping on timeouts: pure queue + resume throughput.

    Run under both event schedulers this doubles as the scheduler
    microbench — the timer population here is exactly the regime the
    calendar queue exists for.
    """
    sim = Simulator(scheduler=scheduler)

    def worker(delay):
        for _ in range(rounds):
            yield sim.timeout(delay)

    for i in range(procs):
        sim.spawn(worker(0.001 * (1 + (i % 7))))
    _, wall = _timed(sim.run)
    events = sim.events_processed
    return {"events": events, "wall_s": wall,
            "events_per_s": events / wall if wall else 0.0}


def bench_callback_chain(length: int) -> Dict[str, float]:
    """A chain of ``call_in`` callbacks: the no-process scheduling path."""
    sim = Simulator()
    state = {"left": length}

    def tick():
        state["left"] -= 1
        if state["left"] > 0:
            sim.call_in(0.001, tick)

    sim.call_in(0.001, tick)
    _, wall = _timed(sim.run)
    return {"callbacks": length, "wall_s": wall,
            "callbacks_per_s": length / wall if wall else 0.0}


def bench_event_pingpong(rounds: int) -> Dict[str, float]:
    """Two processes alternating through Signal fire/wait."""
    sim = Simulator()
    ping, pong = Signal(sim), Signal(sim)
    done = {"count": 0}

    def left():
        for _ in range(rounds):
            ping.fire()
            yield pong.wait()
            done["count"] += 1

    def right():
        for _ in range(rounds):
            yield ping.wait()
            pong.fire()

    sim.spawn(right())
    sim.spawn(left())
    _, wall = _timed(sim.run)
    return {"rounds": done["count"], "wall_s": wall,
            "rounds_per_s": done["count"] / wall if wall else 0.0}


# ---------------------------------------------------------------------------
# Channel bench
# ---------------------------------------------------------------------------

class _BenchReceiver:
    """Minimal stand-in for an OperatorInstance input side."""

    def __init__(self, sim):
        self.sim = sim
        self.wake = Signal(sim)
        self.received = 0

    def on_control(self, channel, element):  # pragma: no cover - unused
        pass


def bench_channel_throughput(elements: int) -> Dict[str, float]:
    """Producer -> Channel (serialize + deliver) -> consumer round trips."""
    from ..engine.channels import Channel, InputChannel

    sim = Simulator()
    link = LinkSpec(bandwidth=1e9, latency=0.0001)
    channel = Channel(sim, link, name="bench", outbox_capacity=64,
                      inbox_capacity=64)
    receiver = _BenchReceiver(sim)
    input_channel = InputChannel(receiver, name="bench-in")
    channel.attach(input_channel)

    def producer():
        for i in range(elements):
            yield channel.send(Record(key=i % 128, key_group=i % 128,
                                      event_time=float(i), count=1,
                                      size_bytes=64.0))

    def consumer():
        while receiver.received < elements:
            if input_channel.queue:
                input_channel.pop()
                receiver.received += 1
            else:
                yield receiver.wake.wait()

    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")
    _, wall = _timed(sim.run)
    return {"elements": receiver.received, "wall_s": wall,
            "elements_per_s": receiver.received / wall if wall else 0.0,
            "kernel_events": sim.events_processed}


# ---------------------------------------------------------------------------
# End-to-end bench
# ---------------------------------------------------------------------------

#: Scenario labels written into e2e result dicts, per workload kind.
_E2E_LABELS = {"q7": "nexmark-q7", "q8": "nexmark-q8", "twitch": "twitch"}


def bench_e2e_scenario(kind: str, until: float, shards: int = 1,
                       transport: Optional[str] = None,
                       inbox: Optional[int] = None) -> Dict[str, float]:
    """One end-to-end workload (quick scenario config, no scaling).

    ``records_per_sec`` counts *physical* source records (batch entities ×
    count) per wall-clock second — the number that caps every figure run.

    With ``shards > 1`` the scenario runs on the sharded multi-process
    kernel *and* its single-process reference at the same (shard-profile)
    config, and the result additionally records the partition plan, the
    flow-control certification, result equivalence, the cut-edge
    sync-protocol counters, and two speedups: ``measured`` (wall-clock,
    meaningful only with >= ``shards`` free cores) and ``critical_path``
    (single CPU over bottleneck-shard CPU — the hardware-independent
    pipeline number).  ``transport`` picks the cut-edge data plane
    ("auto"/"shm"/"pipe"; None = engine default) and ``inbox`` overrides
    the shard flow-control window
    (:attr:`~repro.engine.runtime.JobConfig.shard_inbox_capacity`).
    """
    from ..experiments.scenarios import QUICK, make_workload

    if shards > 1:
        return _bench_e2e_sharded(kind, until, shards, transport, inbox)

    workload = make_workload(kind, QUICK)
    t0 = time.perf_counter()
    job = workload.build()
    build_s = time.perf_counter() - t0
    _, run_s = _timed(lambda: job.run(until=until))
    source = job.metrics.total_source_output()
    sink = job.metrics.total_sink_input()
    events = job.sim.events_processed
    return {
        "scenario": f"{_E2E_LABELS[kind]}/quick/until={until:g}",
        "sim_seconds": until,
        "source_records": source,
        "sink_records": sink,
        "kernel_events": events,
        "phases": {"build_s": build_s, "run_s": run_s},
        "wall_s": run_s,
        "records_per_sec": source / run_s if run_s else 0.0,
        "events_per_sec": events / run_s if run_s else 0.0,
        "sim_seconds_per_wall_second": until / run_s if run_s else 0.0,
    }


def _bench_e2e_sharded(kind: str, until: float, shards: int,
                       transport: Optional[str] = None,
                       inbox: Optional[int] = None) -> Dict:
    """Sharded e2e scenario: sharded run + same-config single reference."""
    import dataclasses

    from ..engine.runtime import JobConfig
    from ..experiments.scenarios import QUICK, make_workload
    from ..simulation.sharded import run_sharded, run_single_reference

    # The shard flow-control window (shard_inbox_capacity, default 512:
    # the engine default of 32 is smaller than one max-size batch, so at
    # paper scale flow control would engage constantly and the credit
    # ledger could not certify the run) becomes the engine-wide inbox for
    # *both* runs — the comparison is always same-config.
    config = JobConfig(shards=shards, shard_inbox_capacity=inbox,
                       shard_transport=transport)
    config = dataclasses.replace(config,
                                 inbox_capacity=config.shard_inbox_capacity)

    def factory():
        return make_workload(kind, QUICK)

    single = run_single_reference(factory, until=until, job_config=config)
    sharded = run_sharded(factory, until=until, shards=shards,
                          job_config=config,
                          weights=SHARD_WEIGHTS.get(kind))
    equal = single.semantic_view() == sharded.semantic_view()
    run_s = sharded.wall_s
    source = sharded.total_source_output()
    single_cpu = single.worker_cpus[0] if single.worker_cpus else 0.0
    bottleneck = sharded.bottleneck_cpu_s
    return {
        "scenario": (f"{_E2E_LABELS[kind]}/quick/until={until:g}"
                     f"/shards={shards}"),
        "sim_seconds": until,
        "source_records": source,
        "sink_records": sharded.total_sink_input(),
        "kernel_events": sharded.kernel_events,
        "wall_s": run_s,
        "records_per_sec": source / run_s if run_s else 0.0,
        "sim_seconds_per_wall_second": until / run_s if run_s else 0.0,
        "sharded": {
            "shards_requested": shards,
            "workers": sharded.shards,
            "plan": [list(s) for s in sharded.plan.shards]
            if sharded.plan else [],
            "replans": sharded.replans,
            "forbidden_cuts": sharded.forbidden_cuts,
            "backpressure_safe": sharded.backpressure_safe,
            "results_equal_to_single": equal,
            "worker_wall_s": sharded.worker_walls,
            "worker_cpu_s": sharded.worker_cpus,
            "single_wall_s": single.wall_s,
            "single_cpu_s": single_cpu,
            "bottleneck_cpu_s": bottleneck,
            "speedup_measured": (single.wall_s / run_s) if run_s else 0.0,
            "speedup_critical_path": (single_cpu / bottleneck)
            if bottleneck else 0.0,
            "transport": sharded.transport,
            "inbox_capacity": config.shard_inbox_capacity,
            "sync": sharded.sync_totals(),
            # Per-shard counters minus the raw blocked-wait intervals
            # (those feed the Chrome-trace exporter, not the bench doc).
            "sync_per_shard": [
                {k: v for k, v in s.items() if k != "blocked_intervals"}
                for s in sharded.sync_per_shard],
        },
    }


def bench_e2e_q7(until: float) -> Dict[str, float]:
    """NEXMark Q7 hot path (the historical single-scenario e2e bench)."""
    return bench_e2e_scenario("q7", until)


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------

#: Default repetitions per bench; the fastest run is reported.  Single-box
#: wall-clock throughput fluctuates far more than the code under test, so
#: best-of-N (same N used for the recorded pre-PR baseline) is the most
#: reproducible point estimate.  CI uses ``--best-of 5 --stat median``
#: instead: the median damps the occasional anomalously-quiet run that
#: best-of rewards, which matters when two *different* commits are being
#: compared rather than two interleaved runs of the same harness.
BEST_OF = 3


def _reduce_runs(fn, args, best_of: int, stat: str) -> Dict[str, float]:
    runs = [fn(*args) for _ in range(best_of)]
    runs.sort(key=lambda r: r["wall_s"])
    if stat == "best":
        return runs[0]
    if stat == "median":
        # Pick an actual run (lower middle for even N) so every metric in
        # the reported dict comes from one self-consistent measurement.
        return runs[(len(runs) - 1) // 2]
    raise ValueError(f"unknown stat: {stat!r} (want 'best' or 'median')")


def _engine_config(shards: int = 1, transport: Optional[str] = None,
                   inbox: Optional[int] = None) -> Dict[str, Any]:
    """The engine settings the e2e scenarios run under."""
    from ..engine.columnar import HAVE_NUMPY
    from ..engine.runtime import JobConfig

    config = JobConfig(shard_inbox_capacity=inbox,
                       shard_transport=transport)
    effective_inbox = (config.shard_inbox_capacity if shards > 1
                       else config.inbox_capacity)
    return {"record_plane": config.record_plane,
            "max_batch_size": config.max_batch_size,
            "scheduler": config.scheduler,
            "columnar_available": HAVE_NUMPY,
            "shards": shards,
            "inbox_capacity": effective_inbox,
            "shard_transport": config.shard_transport}


def _check_scale(scale: str) -> Dict[str, Any]:
    params = BENCH_SCALES.get(scale)
    if params is None:
        raise ValueError(
            f"unknown bench scale: {scale!r} "
            f"(expected one of: {', '.join(sorted(BENCH_SCALES))})")
    return params


def run_kernel_bench(scale: str = "full", best_of: int = BEST_OF,
                     stat: str = "best") -> Dict[str, Any]:
    params = _check_scale(scale)
    storm_args = (params["timeout_procs"], params["timeout_rounds"])
    results = {
        "timeout_storm": _reduce_runs(bench_timeout_storm, storm_args,
                                      best_of, stat),
        # Scheduler microbench: the identical timer storm under the
        # calendar queue — the heap/calendar ratio at this scale is the
        # number the `scheduler` config knob trades on.
        "timeout_storm_calendar": _reduce_runs(
            bench_timeout_storm, storm_args + ("calendar",), best_of, stat),
        "callback_chain": _reduce_runs(bench_callback_chain,
                                       (params["callback_chain"],),
                                       best_of, stat),
        "event_pingpong": _reduce_runs(bench_event_pingpong,
                                       (params["pingpong_rounds"],),
                                       best_of, stat),
        "channel_throughput": _reduce_runs(bench_channel_throughput,
                                           (params["channel_elements"],),
                                           best_of, stat),
    }
    return {"schema": BENCH_SCHEMA, "bench": "kernel", "scale": scale,
            "best_of": best_of, "stat": stat, "config": _engine_config(),
            "results": results}


def run_e2e_bench(scale: str = "full", best_of: int = BEST_OF,
                  stat: str = "best", shards: int = 1,
                  transport: Optional[str] = None,
                  inbox: Optional[int] = None) -> Dict[str, Any]:
    params = _check_scale(scale)
    scenarios = params["e2e"]
    args_tail = (shards, transport, inbox)
    if len(scenarios) == 1:
        # Single-scenario scales keep the flat /2 results shape so the
        # recorded trajectory and committed baselines stay comparable.
        kind, until = scenarios[0]
        results: Dict[str, Any] = _reduce_runs(
            bench_e2e_scenario, (kind, until) + args_tail, best_of, stat)
    else:
        results = {kind: _reduce_runs(bench_e2e_scenario,
                                      (kind, until) + args_tail,
                                      best_of, stat)
                   for kind, until in scenarios}
    return {"schema": BENCH_SCHEMA, "bench": "e2e", "scale": scale,
            "best_of": best_of, "stat": stat,
            "config": _engine_config(shards, transport, inbox),
            "results": results}


def _attach_baseline(doc: Dict[str, Any]) -> None:
    """Embed the recorded pre-PR numbers and speedups into a bench doc."""
    from .baseline import PRE_PR_BASELINE

    base = PRE_PR_BASELINE.get(doc["bench"], {}).get(doc["scale"])
    if base is None:
        return
    doc["pre_pr"] = base
    if doc["bench"] == "e2e":
        ours = doc["results"].get("records_per_sec", 0.0)
        theirs = base.get("records_per_sec", 0.0)
        if theirs:
            doc["speedup_vs_pre_pr"] = ours / theirs
    else:
        speedups = {}
        for name, result in doc["results"].items():
            ref = base.get(name, {})
            for key, value in result.items():
                if key.endswith("_per_s") and ref.get(key):
                    speedups[name] = value / ref[key]
        doc["speedup_vs_pre_pr"] = speedups


def write_bench_files(output_dir: str = ".",
                      scale: str = "full",
                      which: Optional[str] = None,
                      best_of: Optional[int] = None,
                      stat: str = "best",
                      shards: int = 1,
                      transport: Optional[str] = None,
                      inbox: Optional[int] = None) -> Dict[str, str]:
    """Run the suites and write ``BENCH_kernel.json`` / ``BENCH_e2e.json``.

    Returns {bench name: written path}.  ``which`` limits to one suite.
    ``shards`` > 1 runs the e2e scenarios on the sharded kernel (the
    kernel microbenches are single-process by construction);
    ``transport`` / ``inbox`` select the cut-edge data plane and
    flow-control window for those runs (None = engine defaults).
    """
    import json
    import os

    if best_of is None:
        best_of = BEST_OF
    if best_of < 1:
        raise ValueError(f"best_of must be >= 1, got {best_of}")
    _check_scale(scale)
    os.makedirs(output_dir, exist_ok=True)
    written = {}
    runners = {"kernel": run_kernel_bench, "e2e": run_e2e_bench}
    for name, runner in runners.items():
        if which is not None and name != which:
            continue
        if name == "e2e":
            doc = runner(scale, best_of=best_of, stat=stat, shards=shards,
                         transport=transport, inbox=inbox)
        else:
            doc = runner(scale, best_of=best_of, stat=stat)
        _attach_baseline(doc)
        path = os.path.join(output_dir, f"BENCH_{name}.json")
        with open(path, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
        written[name] = path
    return written


# ---------------------------------------------------------------------------
# Baseline comparison (the CI regression gate)
# ---------------------------------------------------------------------------

def _e2e_scenarios(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """An e2e doc's results as {display name: result dict}.

    Single-scenario docs (smoke/full, and every /2 doc) store one flat Q7
    result; the paper scale stores one result per workload.
    """
    results = doc["results"]
    if "records_per_sec" in results:
        return {"e2e_q7": results}
    return {f"e2e_{name}": result for name, result in results.items()}


def _throughput_metrics(doc: Dict[str, Any]) -> Dict[Tuple[str, str], float]:
    """Flatten a bench doc to {(bench name, metric): value} throughputs."""
    metrics = {}
    if doc["bench"] == "e2e":
        for name, result in _e2e_scenarios(doc).items():
            value = result.get("records_per_sec")
            if value:
                metrics[(name, "records_per_sec")] = value
    else:
        for name, result in doc["results"].items():
            for key, value in result.items():
                if key.endswith("_per_s") and value:
                    metrics[(name, key)] = value
    return metrics


def _event_counts(doc: Dict[str, Any]) -> Dict[str, int]:
    """Deterministic kernel event counts recorded by a bench doc."""
    counts = {}
    if doc["bench"] == "e2e":
        for name, result in _e2e_scenarios(doc).items():
            events = result.get("kernel_events")
            if events is not None:
                counts[name] = events
    else:
        for name, result in doc["results"].items():
            if "kernel_events" in result:
                counts[name] = result["kernel_events"]
    return counts


def compare_bench_docs(current: Dict[str, Any], baseline: Dict[str, Any],
                       threshold: float = 0.10,
                       ) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Compare a fresh bench doc against a recorded baseline doc.

    Returns ``(rows, regressions)``: one row per throughput metric present
    in both docs (with the relative delta), and a list of human-readable
    regression descriptions for every metric that dropped by more than
    ``threshold``.  Event-count drift between docs of the same code is a
    *semantics* signal, not noise, so mismatched ``kernel_events`` are
    flagged too — but as rows only, never as perf regressions (a
    legitimate perf patch changes event counts on purpose).
    """
    if current["bench"] != baseline["bench"]:
        raise ValueError(
            f"bench mismatch: current is {current['bench']!r}, "
            f"baseline is {baseline['bench']!r}")
    if current.get("scale") != baseline.get("scale"):
        raise ValueError(
            f"scale mismatch: current is {current.get('scale')!r}, "
            f"baseline is {baseline.get('scale')!r} — deltas between "
            "different scales are meaningless")
    ours = _throughput_metrics(current)
    theirs = _throughput_metrics(baseline)
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for key in sorted(theirs):
        if key not in ours:
            continue
        name, metric = key
        delta = ours[key] / theirs[key] - 1.0
        regressed = delta < -threshold
        rows.append({"bench": name, "metric": metric,
                     "baseline": theirs[key], "current": ours[key],
                     "delta_pct": 100.0 * delta, "regressed": regressed})
        if regressed:
            regressions.append(
                f"{name}.{metric}: {ours[key]:,.0f} vs baseline "
                f"{theirs[key]:,.0f} ({100.0 * delta:+.1f}%, "
                f"threshold -{100.0 * threshold:.0f}%)")
    our_events, their_events = _event_counts(current), _event_counts(baseline)
    for name in sorted(their_events):
        if name in our_events and our_events[name] != their_events[name]:
            rows.append({"bench": name, "metric": "kernel_events",
                         "baseline": their_events[name],
                         "current": our_events[name],
                         "delta_pct": None, "regressed": False})
    return rows, regressions


#: Config keys whose mismatch makes a bench comparison apples-to-oranges.
_CONFIG_COMPARE_KEYS = ("scheduler", "record_plane", "max_batch_size",
                        "shards", "inbox_capacity", "shard_transport")


def config_mismatch_warnings(current: Dict[str, Any],
                             baseline: Dict[str, Any]) -> List[str]:
    """Warnings for engine-config differences between two bench docs.

    A delta between runs under different schedulers, record planes, or
    shard counts measures the *config*, not the code under test; callers
    should surface both configs next to the delta table instead of
    comparing silently.  Keys absent from one doc (older schemas) are
    reported as unrecorded rather than assumed equal.
    """
    ours = current.get("config") or {}
    theirs = baseline.get("config") or {}
    warnings = []
    for key in _CONFIG_COMPARE_KEYS:
        a, b = ours.get(key), theirs.get(key)
        if a == b:
            continue
        if b is None and key not in theirs:
            warnings.append(
                f"baseline does not record config.{key} "
                f"(schema {baseline.get('schema', '?')}); current runs "
                f"with {key}={a!r}")
        else:
            warnings.append(
                f"config mismatch: current {key}={a!r} vs baseline "
                f"{key}={b!r} — deltas reflect the config change, not "
                "the code under test")
    return warnings


def format_config(doc: Dict[str, Any]) -> str:
    """One-line rendering of a bench doc's engine config."""
    config = doc.get("config") or {}
    parts = [f"{k}={config[k]!r}" for k in sorted(config)]
    return ", ".join(parts) if parts else "(no config recorded)"


def format_delta_table(rows: List[Dict[str, Any]],
                       markdown: bool = False) -> str:
    """Render compare rows as a console or GitHub-job-summary table."""
    header = ("bench", "metric", "baseline", "current", "delta")
    body = []
    for row in rows:
        if row["delta_pct"] is None:
            delta = "events changed"
        else:
            delta = f"{row['delta_pct']:+.1f}%"
            if row["regressed"]:
                delta += " REGRESSED"
        body.append((row["bench"], row["metric"],
                     f"{row['baseline']:,.0f}", f"{row['current']:,.0f}",
                     delta))
    if markdown:
        lines = ["| " + " | ".join(header) + " |",
                 "|" + "---|" * len(header)]
        lines += ["| " + " | ".join(cells) + " |" for cells in body]
        return "\n".join(lines)
    widths = [max(len(str(cells[i])) for cells in [header] + body)
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(cells, widths))
              for cells in body]
    return "\n".join(lines)
