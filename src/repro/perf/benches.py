"""Microbenchmarks: kernel primitives, channel plane, end-to-end workload.

Every bench reports wall-clock throughput (operations or records per
second).  Simulated time is free — these measure how much *host* CPU one
simulated second costs, which is exactly what caps the workload sizes the
reproduction can explore.

The benches are deliberately deterministic in simulated behaviour: the same
scenario the e2e bench times is also covered by the golden-trace test, so a
perf patch that accidentally changes semantics fails the golden test rather
than silently shifting the numbers here.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Dict, Optional

from ..engine.cluster import LinkSpec
from ..engine.records import Record
from ..simulation.kernel import Simulator
from ..simulation.primitives import Signal

__all__ = ["BENCH_SCALES", "run_kernel_bench", "run_e2e_bench",
           "write_bench_files"]

#: Named scales: ``smoke`` for CI, ``full`` for the recorded trajectory.
BENCH_SCALES = {
    "smoke": {"timeout_procs": 50, "timeout_rounds": 200,
              "callback_chain": 20_000, "pingpong_rounds": 20_000,
              "channel_elements": 20_000, "e2e_until": 8.0},
    "full": {"timeout_procs": 100, "timeout_rounds": 1000,
             "callback_chain": 100_000, "pingpong_rounds": 100_000,
             "channel_elements": 100_000, "e2e_until": 30.0},
}


def _timed(fn):
    """Run ``fn`` with the collector paused; returns (result, wall_s)."""
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    return result, wall


# ---------------------------------------------------------------------------
# Kernel benches
# ---------------------------------------------------------------------------

def bench_timeout_storm(procs: int, rounds: int) -> Dict[str, float]:
    """Many processes sleeping on timeouts: pure heap + resume throughput."""
    sim = Simulator()

    def worker(delay):
        for _ in range(rounds):
            yield sim.timeout(delay)

    for i in range(procs):
        sim.spawn(worker(0.001 * (1 + (i % 7))))
    _, wall = _timed(sim.run)
    events = sim.events_processed
    return {"events": events, "wall_s": wall,
            "events_per_s": events / wall if wall else 0.0}


def bench_callback_chain(length: int) -> Dict[str, float]:
    """A chain of ``call_in`` callbacks: the no-process scheduling path."""
    sim = Simulator()
    state = {"left": length}

    def tick():
        state["left"] -= 1
        if state["left"] > 0:
            sim.call_in(0.001, tick)

    sim.call_in(0.001, tick)
    _, wall = _timed(sim.run)
    return {"callbacks": length, "wall_s": wall,
            "callbacks_per_s": length / wall if wall else 0.0}


def bench_event_pingpong(rounds: int) -> Dict[str, float]:
    """Two processes alternating through Signal fire/wait."""
    sim = Simulator()
    ping, pong = Signal(sim), Signal(sim)
    done = {"count": 0}

    def left():
        for _ in range(rounds):
            ping.fire()
            yield pong.wait()
            done["count"] += 1

    def right():
        for _ in range(rounds):
            yield ping.wait()
            pong.fire()

    sim.spawn(right())
    sim.spawn(left())
    _, wall = _timed(sim.run)
    return {"rounds": done["count"], "wall_s": wall,
            "rounds_per_s": done["count"] / wall if wall else 0.0}


# ---------------------------------------------------------------------------
# Channel bench
# ---------------------------------------------------------------------------

class _BenchReceiver:
    """Minimal stand-in for an OperatorInstance input side."""

    def __init__(self, sim):
        self.sim = sim
        self.wake = Signal(sim)
        self.received = 0

    def on_control(self, channel, element):  # pragma: no cover - unused
        pass


def bench_channel_throughput(elements: int) -> Dict[str, float]:
    """Producer -> Channel (serialize + deliver) -> consumer round trips."""
    from ..engine.channels import Channel, InputChannel

    sim = Simulator()
    link = LinkSpec(bandwidth=1e9, latency=0.0001)
    channel = Channel(sim, link, name="bench", outbox_capacity=64,
                      inbox_capacity=64)
    receiver = _BenchReceiver(sim)
    input_channel = InputChannel(receiver, name="bench-in")
    channel.attach(input_channel)

    def producer():
        for i in range(elements):
            yield channel.send(Record(key=i % 128, key_group=i % 128,
                                      event_time=float(i), count=1,
                                      size_bytes=64.0))

    def consumer():
        while receiver.received < elements:
            if input_channel.queue:
                input_channel.pop()
                receiver.received += 1
            else:
                yield receiver.wake.wait()

    sim.spawn(producer(), name="producer")
    sim.spawn(consumer(), name="consumer")
    _, wall = _timed(sim.run)
    return {"elements": receiver.received, "wall_s": wall,
            "elements_per_s": receiver.received / wall if wall else 0.0,
            "kernel_events": sim.events_processed}


# ---------------------------------------------------------------------------
# End-to-end bench
# ---------------------------------------------------------------------------

def bench_e2e_q7(until: float) -> Dict[str, float]:
    """NEXMark Q7 (quick scenario, no scaling): the figure-pipeline hot path.

    ``records_per_sec`` counts *physical* source records (batch entities ×
    count) per wall-clock second — the number that caps every figure run.
    """
    from ..experiments.scenarios import QUICK, make_workload

    workload = make_workload("q7", QUICK)
    t0 = time.perf_counter()
    job = workload.build()
    build_s = time.perf_counter() - t0
    _, run_s = _timed(lambda: job.run(until=until))
    source = job.metrics.total_source_output()
    sink = job.metrics.total_sink_input()
    events = job.sim.events_processed
    return {
        "scenario": f"nexmark-q7/quick/until={until:g}",
        "sim_seconds": until,
        "source_records": source,
        "sink_records": sink,
        "kernel_events": events,
        "phases": {"build_s": build_s, "run_s": run_s},
        "wall_s": run_s,
        "records_per_sec": source / run_s if run_s else 0.0,
        "events_per_sec": events / run_s if run_s else 0.0,
        "sim_seconds_per_wall_second": until / run_s if run_s else 0.0,
    }


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------

#: Repetitions per bench; the fastest run is reported.  Single-box
#: wall-clock throughput fluctuates far more than the code under test, so
#: best-of-N (same N used for the recorded pre-PR baseline) is the most
#: reproducible point estimate.
BEST_OF = 3


def _best_of(fn, *args) -> Dict[str, float]:
    best = None
    for _ in range(BEST_OF):
        result = fn(*args)
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    return best


def run_kernel_bench(scale: str = "full") -> Dict[str, Any]:
    params = BENCH_SCALES[scale]
    results = {
        "timeout_storm": _best_of(bench_timeout_storm,
                                  params["timeout_procs"],
                                  params["timeout_rounds"]),
        "callback_chain": _best_of(bench_callback_chain,
                                   params["callback_chain"]),
        "event_pingpong": _best_of(bench_event_pingpong,
                                   params["pingpong_rounds"]),
        "channel_throughput": _best_of(bench_channel_throughput,
                                       params["channel_elements"]),
    }
    return {"schema": "repro-bench/1", "bench": "kernel", "scale": scale,
            "best_of": BEST_OF, "results": results}


def run_e2e_bench(scale: str = "full") -> Dict[str, Any]:
    params = BENCH_SCALES[scale]
    return {"schema": "repro-bench/1", "bench": "e2e", "scale": scale,
            "best_of": BEST_OF,
            "results": _best_of(bench_e2e_q7, params["e2e_until"])}


def _attach_baseline(doc: Dict[str, Any]) -> None:
    """Embed the recorded pre-PR numbers and speedups into a bench doc."""
    from .baseline import PRE_PR_BASELINE

    base = PRE_PR_BASELINE.get(doc["bench"], {}).get(doc["scale"])
    if base is None:
        return
    doc["pre_pr"] = base
    if doc["bench"] == "e2e":
        ours = doc["results"].get("records_per_sec", 0.0)
        theirs = base.get("records_per_sec", 0.0)
        if theirs:
            doc["speedup_vs_pre_pr"] = ours / theirs
    else:
        speedups = {}
        for name, result in doc["results"].items():
            ref = base.get(name, {})
            for key, value in result.items():
                if key.endswith("_per_s") and ref.get(key):
                    speedups[name] = value / ref[key]
        doc["speedup_vs_pre_pr"] = speedups


def write_bench_files(output_dir: str = ".",
                      scale: str = "full",
                      which: Optional[str] = None) -> Dict[str, str]:
    """Run the suites and write ``BENCH_kernel.json`` / ``BENCH_e2e.json``.

    Returns {bench name: written path}.  ``which`` limits to one suite.
    """
    import json
    import os

    os.makedirs(output_dir, exist_ok=True)
    written = {}
    runners = {"kernel": run_kernel_bench, "e2e": run_e2e_bench}
    for name, runner in runners.items():
        if which is not None and name != which:
            continue
        doc = runner(scale)
        _attach_baseline(doc)
        path = os.path.join(output_dir, f"BENCH_{name}.json")
        with open(path, "w") as f:
            json.dump(doc, f, indent=1, sort_keys=True)
            f.write("\n")
        written[name] = path
    return written
