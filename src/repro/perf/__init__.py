"""Wall-clock performance benchmarks for the DES kernel and record plane.

``repro bench`` runs these and writes ``BENCH_kernel.json`` /
``BENCH_e2e.json`` — the repo's recorded perf trajectory.  Each document
embeds the pre-optimization numbers (measured at the pre-PR commit with
this same harness, see :mod:`repro.perf.baseline`) so regressions and
speedups are visible in one file.
"""

from .benches import (BENCH_SCALES, compare_bench_docs,
                      config_mismatch_warnings, format_config,
                      format_delta_table, run_e2e_bench, run_kernel_bench,
                      write_bench_files)

__all__ = ["BENCH_SCALES", "run_kernel_bench", "run_e2e_bench",
           "write_bench_files", "compare_bench_docs",
           "config_mismatch_warnings", "format_config",
           "format_delta_table"]
