"""Megaphone-style baseline: timestamp-driven fluid migration, Naive Division.

Following the paper's re-implementation (§V-A): predecessor injection gives
Megaphone its characteristically short propagation *paths*, and the
200-record scheduling buffer is enabled (as the paper grants it).  The
timestamp-driven migration plan is modelled by Naive Division: the move set
is split into lexicographic batches, and each batch runs a full coupled
synchronization (routing update + alignment) before its fluid migration —
producing the strict linear dependency between migration units, the large
cumulative propagation delay, and the long scaling duration of Fig. 12.
"""

from __future__ import annotations

from ..engine.state import StateStatus
from .otfs import OTFSController

__all__ = ["MegaphoneController"]


class MegaphoneController(OTFSController):
    """Naive-Division sequence of coupled sub-reconfigurations."""

    name = "megaphone"

    def __init__(self, job, batch_size: int = 4,
                 scheduling: bool = True,
                 buffer_size: int = 200,
                 control_latency: float = 0.002):
        super().__init__(job, migration="fluid", injection="predecessor",
                         scheduling=scheduling, buffer_size=buffer_size,
                         control_latency=control_latency)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size

    def _execute(self, op_name, plan, scale_id):
        self._plan = plan
        self._op_name = op_name
        self._route_set = self._upstream_closure(op_name) | {op_name}
        self.job.signal_router = self._on_signal

        new_instances = yield from self._provision(op_name, plan)
        instances = self.job.instances(op_name)
        old_instances = instances[:plan.old_parallelism]
        scaling_instances = old_instances + new_instances

        self._attach_suspension_probes(scaling_instances)
        saved = self._install_handlers(scaling_instances,
                                       scheduling=self.scheduling,
                                       buffer_size=self.buffer_size)

        groups = plan.migrating_groups  # lexicographic, as the paper's C1
        batches = [groups[i:i + self.batch_size]
                   for i in range(0, len(groups), self.batch_size)]
        for phase, batch in enumerate(batches):
            # Per-batch lifecycle marking: only this batch is in flight.
            routing = {}
            for kg in batch:
                move = plan.move_for(kg)
                routing[kg] = move.dst_index
                instances[move.src_index].state.require_group(
                    kg).status = StateStatus.PENDING_OUT
                instances[move.dst_index].state.register_group(
                    kg, StateStatus.INCOMING)
            self._remaining = set(batch)
            self._complete = self.sim.event()
            self._aligned_old = set()
            # Dependency is anchored at the first sub-reconfiguration: the
            # Naive-Division chain makes every later unit wait on it.
            yield from self._inject_phase(op_name, plan, scale_id,
                                          phase=phase, routing=routing,
                                          anchor=(scale_id, 0))
            if self._remaining:
                yield self._complete

        self._restore_handlers(saved)
        self._detach_suspension_probes(scaling_instances)
        self._finalize_assignment(op_name, plan)
