"""The generalized on-the-fly-scaling (OTFS) framework of §II-B.

One coupled scaling barrier carries both the routing confirmation and the
migration trigger:

1. **Synchronization** — the barrier is injected (at the sources by default,
   or directly at the predecessors), propagates through the topology like a
   checkpoint barrier with per-operator alignment, and predecessors update
   their routing tables as they forward it.  Scaling instances block each
   input channel on barrier arrival until fully aligned.
2. **State migration** — once an original instance is aligned, its outgoing
   key-groups migrate either *all-at-once* (one synchronized batch, Fig. 1b)
   or *fluid* (one key-group at a time, resuming per arrival, Fig. 1c).

New instances suspend whenever the engine delivers a record whose state has
not arrived (no record scheduling in the baseline).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..engine.operators import OperatorInstance
from ..engine.state import StateStatus
from .base import ScaleSignalBarrier, ScalingController
from .plan import MigrationPlan

__all__ = ["OTFSController"]


class OTFSController(ScalingController):
    """Generalized OTFS with coupled signals and configurable migration."""

    name = "otfs"

    def __init__(self, job, migration: str = "fluid",
                 injection: str = "source",
                 scheduling: bool = False,
                 buffer_size: int = 200,
                 control_latency: float = 0.002):
        super().__init__(job, control_latency=control_latency)
        if migration not in ("fluid", "all_at_once"):
            raise ValueError(f"unknown migration mode: {migration}")
        if injection not in ("source", "predecessor"):
            raise ValueError(f"unknown injection mode: {injection}")
        self.migration = migration
        self.injection = injection
        self.scheduling = scheduling
        self.buffer_size = buffer_size
        self._align: Dict = {}
        self._plan: Optional[MigrationPlan] = None
        self._op_name: Optional[str] = None
        self._route_set: Set[str] = set()
        self._remaining: Set[int] = set()
        self._complete = None
        self._aligned_old: Set[int] = set()

    # -- main flow ---------------------------------------------------------------

    def _execute(self, op_name, plan, scale_id):
        self._plan = plan
        self._op_name = op_name
        self._route_set = self._upstream_closure(op_name) | {op_name}
        self._remaining = set(plan.migrating_groups)
        self._complete = self.sim.event()
        self._aligned_old = set()
        self.job.signal_router = self._on_signal

        new_instances = yield from self._provision(op_name, plan)
        instances = self.job.instances(op_name)
        old_instances = instances[:plan.old_parallelism]
        scaling_instances = old_instances + new_instances

        # Pre-register migration lifecycle state.
        for move in plan.moves:
            instances[move.src_index].state.require_group(
                move.key_group).status = StateStatus.PENDING_OUT
            instances[move.dst_index].state.register_group(
                move.key_group, StateStatus.INCOMING)

        self._attach_suspension_probes(scaling_instances)
        saved = self._install_handlers(scaling_instances,
                                       scheduling=self.scheduling,
                                       buffer_size=self.buffer_size)

        yield from self._inject_phase(op_name, plan, scale_id, phase=0,
                                      routing=plan.routing_updates())
        if self._remaining:
            yield self._complete
        self._restore_handlers(saved)
        self._detach_suspension_probes(scaling_instances)
        self._finalize_assignment(op_name, plan)

    def _inject_phase(self, op_name, plan, scale_id, phase, routing,
                      anchor=None):
        """Send the coupled barrier for one phase into the dataflow."""
        signal_id = (scale_id, phase)
        for kg in routing:
            self.metrics.assign_group(kg, signal_id, anchor_id=anchor)
        barrier = ScaleSignalBarrier(scale_id=scale_id, phase=phase,
                                     routing_updates=dict(routing))
        yield self.sim.timeout(self.control_latency)
        self.metrics.signal_injected(signal_id, self.sim.now)
        if self.injection == "source":
            for source in self.job.sources():
                source.inject(ScaleSignalBarrier(
                    scale_id=scale_id, phase=phase,
                    routing_updates=dict(routing)))
        else:
            for sender, _edge in self.job.senders_to(op_name):
                sender.run_inband(self._make_injection(barrier))

    def _make_injection(self, barrier):
        def inject(instance):
            self._apply_routing(instance, barrier)
            yield from self._forward(instance, barrier,
                                     only_to=self._op_name)
        return inject

    # -- signal propagation -----------------------------------------------------------

    def _upstream_closure(self, op_name: str) -> Set[str]:
        closure: Set[str] = set()
        frontier = [op_name]
        while frontier:
            name = frontier.pop()
            for up in self.job.graph.upstream_of(name):
                if up not in closure:
                    closure.add(up)
                    frontier.append(up)
        return closure

    def _role(self, instance: OperatorInstance) -> str:
        if instance.spec.name == self._op_name:
            if instance.index < self._plan.old_parallelism:
                return "old"
            return "new"
        if instance.spec.name in self.job.graph.upstream_of(self._op_name):
            return "predecessor"
        return "other"

    def _on_signal(self, instance, channel, signal):
        """In-band dispatch for coupled barriers (generator)."""
        if not isinstance(signal, ScaleSignalBarrier):
            return
        role = self._role(instance)
        if role in ("old", "new"):
            self._align_scaling_instance(instance, channel, signal, role)
            return
        key = (id(instance), signal.signal_key)
        token = ("scale", signal.signal_key)
        seen = self._align.setdefault(key, set())
        if channel is not None:
            channel.block(token)
            seen.add(id(channel))
        needed = {id(ch) for ch in instance.input_channels
                  if not ch.is_auxiliary}
        if channel is None or seen >= needed:
            self._align.pop(key, None)
            if role == "predecessor":
                self._apply_routing(instance, signal)
            for ch in instance.input_channels:
                ch.unblock(token)
            instance.wake.fire()
            yield from self._forward(instance, signal)

    def _align_scaling_instance(self, instance, channel, signal, role):
        key = (id(instance), signal.signal_key)
        token = ("scale", signal.signal_key)
        seen = self._align.setdefault(key, set())
        if channel is not None:
            channel.block(token)
            seen.add(id(channel))
        needed = {id(ch) for ch in instance.input_channels
                  if not ch.is_auxiliary}
        if seen >= needed:
            self._align.pop(key, None)
            for ch in instance.input_channels:
                ch.unblock(token)
            instance.wake.fire()
            mig_key = (instance.index, signal.signal_key)
            if role == "old" and mig_key not in self._aligned_old:
                self._aligned_old.add(mig_key)
                self._start_migration(instance, signal)

    def _apply_routing(self, instance, signal) -> None:
        for edge in instance.router.edges:
            if getattr(edge, "dst_op", None) == self._op_name:
                for kg, dst in signal.routing_updates.items():
                    edge.set_routing(kg, dst)

    def _forward(self, instance, signal, only_to: Optional[str] = None):
        for edge in instance.router.edges:
            dst_op = getattr(edge, "dst_op", None)
            if only_to is not None and dst_op != only_to:
                continue
            if only_to is None and dst_op not in self._route_set:
                continue
            for ch in edge.channels:
                yield ch.send(ScaleSignalBarrier(
                    scale_id=signal.scale_id, phase=signal.phase,
                    routing_updates=dict(signal.routing_updates)))

    # -- migration ------------------------------------------------------------------

    def _start_migration(self, src: OperatorInstance, signal) -> None:
        moves = [m for m in self._plan.moves
                 if m.src_index == src.index
                 and m.key_group in signal.routing_updates]
        if not moves:
            return
        instances = self.job.instances(self._op_name)
        if self.migration == "fluid":
            self.sim.spawn(self._fluid_migration(src, moves, instances),
                           name=f"migrate:{src.name}")
        else:
            self.sim.spawn(self._batch_migration(src, moves, instances),
                           name=f"migrate:{src.name}")

    def _fluid_migration(self, src, moves, instances):
        for move in moves:
            dst = instances[move.dst_index]
            yield from self._transfer_group(src, dst, move.key_group,
                                            arrival_status=StateStatus.LOCAL)
            self._mark_done(move.key_group)

    def _batch_migration(self, src, moves, instances):
        """All-at-once: one synchronized batch per source instance."""
        cost_model = self.job.config.transfer
        extracted = []
        total_size = 0.0
        for move in moves:
            yield from self._wait_until_idle(src, move.key_group)
            if cost_model.extract_seconds_per_group > 0:
                yield self.sim.timeout(cost_model.extract_seconds_per_group)
            group = src.state.require_group(move.key_group)
            self.metrics.note_migration_started(move.key_group, self.sim.now)
            extracted.append((move, group.entries, group.size_bytes))
            total_size += group.size_bytes
            group.entries = {}
            group.size_bytes = 0.0
            group.status = StateStatus.MIGRATED_OUT
            group.bump_version()
        src.wake.fire()
        link = self.job.link_between(src, instances[moves[0].dst_index])
        yield self.sim.timeout(cost_model.transfer_seconds(
            total_size, link.bandwidth, link.latency))
        for move, entries, size in extracted:
            dst = instances[move.dst_index]
            group = dst.state.group(move.key_group)
            if group is None:
                group = dst.state.register_group(move.key_group,
                                                 StateStatus.LOCAL)
            group.entries = entries
            group.size_bytes = size
            group.status = StateStatus.LOCAL
            group.bump_version()
            self.metrics.note_migration_completed(move.key_group,
                                                  self.sim.now)
            dst.wake.fire()
            self._mark_done(move.key_group)

    def _mark_done(self, key_group: int) -> None:
        self._remaining.discard(key_group)
        if not self._remaining and self._complete is not None:
            if not self._complete.triggered:
                self._complete.succeed()
