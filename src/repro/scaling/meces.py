"""Meces-style baseline: single synchronization + prioritized fetch-on-demand.

Modelled on the paper's re-implementation (§V-A):

* **Single synchronization**: one coupled barrier injected at the
  predecessors updates all routing at once — no alignment blocking, so
  Meces has the lowest cumulative propagation overhead (Fig. 12).
* **Hierarchical State Organization**: each key-group splits into
  ``sub_groups`` independently movable sub-key-groups.
* **Fetch-on-Demand**: whichever instance needs a sub-key-group it does not
  hold issues a priority fetch and suspends until it arrives.  Because
  records keep arriving at the *original* instance until the barrier passes,
  hot sub-key-groups bounce back and forth between instances — the
  remigration storms and high suspension time of Fig. 13.
* A **background pusher** migrates the remaining sub-key-groups toward their
  planned owners at low priority.
* Per §V-A, Meces runs *without* the 200-record scheduling buffer (it made
  fetch-on-demand more aggressive and hurt performance).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from ..engine.keys import key_to_key_group
from ..engine.operators import OperatorInstance
from ..engine.records import Record
from ..engine.state import StateStatus
from .base import ScaleSignalBarrier, ScalingController
from .plan import MigrationPlan

__all__ = ["MecesController"]


class MecesController(ScalingController):
    """Fetch-on-demand rescaling with hierarchical sub-key-groups."""

    name = "meces"

    def __init__(self, job, sub_groups: int = 4,
                 control_latency: float = 0.002):
        super().__init__(job, control_latency=control_latency)
        if sub_groups < 1:
            raise ValueError("sub_groups must be >= 1")
        self.sub_groups = sub_groups
        self._plan: Optional[MigrationPlan] = None
        self._op_name: Optional[str] = None
        #: (key_group, sub) → current holder instance.
        self._sub_owner: Dict[Tuple[int, int], OperatorInstance] = {}
        #: (key_group, sub) currently on the wire.
        self._in_flight: Set[Tuple[int, int]] = set()
        self._move_counts: Dict[Tuple[int, int], int] = {}
        self._tasks = deque()
        self._task_wake = None
        self._old_barrier_seen: Dict[int, Set[int]] = {}
        self._migration_enabled = False
        self._done_event = None

    # -- sub-key-group helpers ----------------------------------------------------

    def sub_of_key(self, key) -> int:
        return key_to_key_group(("meces-sub", key), self.sub_groups)

    def sub_of_record(self, record: Record) -> int:
        return self.sub_of_key(record.key)

    def _holds(self, instance: OperatorInstance, key_group: int,
               sub: int) -> bool:
        return self._sub_owner.get((key_group, sub)) is instance

    # -- processability + fetch-on-demand side effect ---------------------------------

    def record_ready(self, instance, record) -> bool:
        kg = record.key_group
        if self._plan is None or kg not in self._moving:
            group = instance.state.group(kg)
            return group is not None and group.processable
        sub = self.sub_of_record(record)
        if self._holds(instance, kg, sub):
            return True
        # Fetch-on-demand: request the missing sub-key-group, then suspend.
        self._request_fetch(instance, kg, sub, priority=True)
        return False

    def _request_fetch(self, requester, key_group, sub,
                       priority: bool) -> None:
        if (key_group, sub) in self._in_flight:
            return
        task = (requester, key_group, sub)
        if task in self._tasks:
            if priority and self._tasks[0] != task:
                # Fetch-on-demand outranks the background pusher: promote
                # the queued task to the head of the transfer queue.
                self._tasks.remove(task)
                self._tasks.appendleft(task)
            return
        if priority:
            self._tasks.appendleft(task)
        else:
            self._tasks.append(task)
        if self._task_wake is not None:
            self._task_wake.fire()

    # -- main flow -----------------------------------------------------------------

    def _execute(self, op_name, plan, scale_id):
        from ..simulation.primitives import Signal

        self._plan = plan
        self._op_name = op_name
        self._moving = set(plan.migrating_groups)
        self._task_wake = Signal(self.sim)
        self._done_event = self.sim.event()
        self.job.signal_router = self._on_signal

        new_instances = yield from self._provision(op_name, plan)
        instances = self.job.instances(op_name)
        old_instances = instances[:plan.old_parallelism]
        scaling_instances = old_instances + new_instances

        # Ownership map: every sub of every moving group starts at its src.
        for move in plan.moves:
            src = instances[move.src_index]
            group = src.state.require_group(move.key_group)
            group.sub_groups_present = set(range(self.sub_groups))
            for sub in range(self.sub_groups):
                self._sub_owner[(move.key_group, sub)] = src
                self._move_counts[(move.key_group, sub)] = 0
            dst = instances[move.dst_index]
            new_group = dst.state.register_group(move.key_group,
                                                 StateStatus.INCOMING)
            new_group.sub_groups_present = set()
        self._old_barrier_seen = {
            inst.index: set() for inst in old_instances}

        self._attach_suspension_probes(scaling_instances)
        saved = self._install_handlers(scaling_instances, scheduling=False)

        # Single synchronization: routing for every move flips at once.
        signal_id = (scale_id, 0)
        for kg in self._moving:
            self.metrics.assign_group(kg, signal_id)
        barrier = ScaleSignalBarrier(scale_id=scale_id, phase=0,
                                     routing_updates=plan.routing_updates())
        yield self.sim.timeout(self.control_latency)
        self.metrics.signal_injected(signal_id, self.sim.now)
        for sender, edge in self.job.senders_to(op_name):
            sender.run_inband(self._make_injection(barrier, edge))
        self._migration_enabled = True

        transfer_proc = self.sim.spawn(self._transfer_executor(),
                                       name="meces-transfers")
        pusher_proc = self.sim.spawn(self._background_pusher(instances),
                                     name="meces-pusher")

        yield self._done_event
        self._restore_handlers(saved)
        self._detach_suspension_probes(scaling_instances)
        for move in plan.moves:
            dst = instances[move.dst_index]
            dst.state.require_group(move.key_group).status = StateStatus.LOCAL
        self._finalize_assignment(op_name, plan)
        self._task_wake.fire()  # let the executor observe completion and exit

    def _make_injection(self, barrier, edge):
        def inject(instance):
            for kg, dst in barrier.routing_updates.items():
                edge.set_routing(kg, dst)
            for ch in edge.channels:
                yield ch.send(ScaleSignalBarrier(
                    scale_id=barrier.scale_id, phase=barrier.phase,
                    routing_updates={}))
        return inject

    def _on_signal(self, instance, channel, signal):
        """Barrier arrival at scaling instances: no blocking, just epochs."""
        if not isinstance(signal, ScaleSignalBarrier):
            return
        if instance.spec.name != self._op_name:
            return
        if instance.index in self._old_barrier_seen and channel is not None:
            seen = self._old_barrier_seen[instance.index]
            seen.add(id(channel))
        self._check_done()
        return
        yield  # pragma: no cover - makes this a generator

    # -- transfers -------------------------------------------------------------------

    def _transfer_executor(self):
        """Serialized sub-key-group transfer service with priority queue."""
        cost_model = self.job.config.transfer
        while self.active:
            while not self._tasks:
                if not self.active:
                    return
                yield self._task_wake.wait()
                if not self.active:
                    return
            requester, kg, sub = self._tasks.popleft()
            holder = self._sub_owner.get((kg, sub))
            if holder is requester or holder is None:
                continue
            self._in_flight.add((kg, sub))
            yield from self._wait_until_idle(holder, kg)
            src_group = holder.state.group(kg)
            present = src_group.sub_groups_present or set()
            if sub not in present:
                self._in_flight.discard((kg, sub))
                continue
            if self._move_counts[(kg, sub)] == 0:
                self.metrics.note_migration_started(kg, self.sim.now)
            # Extract this sub's share of entries and bytes.
            share = (src_group.size_bytes / len(present)) if present else 0.0
            moved_entries = {k: v for k, v in src_group.entries.items()
                             if self.sub_of_key(k) == sub}
            for k in moved_entries:
                del src_group.entries[k]
            src_group.bump_version()
            src_group.size_bytes = max(0.0, src_group.size_bytes - share)
            present.discard(sub)
            if not present:
                src_group.status = StateStatus.MIGRATED_OUT
            if cost_model.extract_seconds_per_group > 0:
                yield self.sim.timeout(
                    cost_model.extract_seconds_per_group / self.sub_groups)
            link = self.job.link_between(holder, requester)
            gate = self.job.transfer_gate(holder.node.name)
            yield gate.acquire()
            try:
                yield self.sim.timeout(cost_model.transfer_seconds(
                    share, link.bandwidth, link.latency))
            finally:
                gate.release()
            dst_group = requester.state.group(kg)
            if dst_group is None:
                dst_group = requester.state.register_group(
                    kg, StateStatus.LOCAL)
            if dst_group.sub_groups_present is None:
                dst_group.sub_groups_present = set()
            dst_group.entries.update(moved_entries)
            dst_group.size_bytes += share
            dst_group.sub_groups_present.add(sub)
            dst_group.bump_version()
            if dst_group.status is not StateStatus.LOCAL:
                dst_group.status = StateStatus.LOCAL
            self._sub_owner[(kg, sub)] = requester
            self._in_flight.discard((kg, sub))
            count = self._move_counts[(kg, sub)] + 1
            self._move_counts[(kg, sub)] = count
            if count > 1:
                self.metrics.note_remigration()
            if self._group_at_target(kg):
                self.metrics.note_migration_completed(kg, self.sim.now)
            holder.wake.fire()
            requester.wake.fire()
            self._check_done()

    def _background_pusher(self, instances):
        """Low-priority push of every sub not yet at its planned owner."""
        while self.active and self._done_event is not None \
                and not self._done_event.triggered:
            progress = False
            for move in self._plan.moves:
                target = instances[move.dst_index]
                for sub in range(self.sub_groups):
                    key = (move.key_group, sub)
                    if (self._sub_owner.get(key) is not target
                            and key not in self._in_flight):
                        self._request_fetch(target, move.key_group, sub,
                                            priority=False)
                        progress = True
            self._check_done()
            yield self.sim.timeout(0.05 if progress else 0.02)

    # -- completion -----------------------------------------------------------------

    def _group_at_target(self, kg: int) -> bool:
        instances = self.job.instances(self._op_name)
        target = instances[self._plan.move_for(kg).dst_index]
        return all(self._sub_owner.get((kg, sub)) is target
                   for sub in range(self.sub_groups))

    def _check_done(self) -> None:
        if self._done_event is None or self._done_event.triggered:
            return
        if not self._migration_enabled:
            return
        # 1) every old instance has seen the barrier on every channel
        #    (no more pre-epoch records can arrive and trigger fetch-backs);
        instances = self.job.instances(self._op_name)
        for index, seen in self._old_barrier_seen.items():
            inst = instances[index]
            needed = {id(ch) for ch in inst.input_channels
                      if not getattr(ch, "is_auxiliary", False)}
            if not seen >= needed:
                return
        # 2) every sub of every moving group rests at its planned owner.
        for kg in self._moving:
            if not self._group_at_target(kg):
                return
        if self._in_flight or self._tasks:
            return
        self._done_event.succeed()
