"""The "Unbound" probe of §II-B: performance without correctness.

Unbound updates routing tables and triggers state migration independently —
no scaling-signal propagation — and converts record keys into "universal
keys" so every local state may process any record, eliminating processing
suspensions entirely.  It therefore removes :math:`L_p` and :math:`L_s` and
hides :math:`L_d` from the latency signal, bounding how fast *any* correct
mechanism could possibly be (Fig. 2).

Correctness is intentionally violated: records may execute against missing
or stale state.  Use only as an experimental lower bound.
"""

from __future__ import annotations

from ..engine.state import StateStatus
from .base import ScalingController

__all__ = ["UnboundController"]


class UnboundController(ScalingController):
    """Lower-bound probe: instant routing flip, background migration."""

    name = "unbound"

    def record_ready(self, instance, record) -> bool:
        # Universal keys: every record is processable everywhere.
        return True

    def _execute(self, op_name, plan, scale_id):
        new_instances = yield from self._provision(op_name, plan)
        instances = self.job.instances(op_name)
        scaling_instances = (instances[:plan.old_parallelism]
                             + new_instances)
        self._attach_suspension_probes(scaling_instances)

        # Routing tables flip instantly and out-of-band: no signals at all.
        signal_id = (scale_id, 0)
        self.metrics.signal_injected(signal_id, self.sim.now)
        routing = plan.routing_updates()
        for kg in routing:
            self.metrics.assign_group(kg, signal_id)
        for _sender, edge in self.job.senders_to(op_name):
            for kg, dst in routing.items():
                edge.set_routing(kg, dst)

        # Universal keys at the new instances: pre-register empty LOCAL
        # groups so any record can execute immediately (state or not).
        for move in plan.moves:
            dst = instances[move.dst_index]
            if dst.state.group(move.key_group) is None:
                dst.state.register_group(move.key_group, StateStatus.LOCAL)

        # Background migration, fluid, one path at a time per source.
        events = []
        for src_index, moves in self._moves_by_src(plan).items():
            src = instances[src_index]
            events.append(self.sim.spawn(
                self._migrate(src, moves, instances),
                name=f"unbound-migrate:{src.name}"))
        if events:
            yield self.sim.all_of(events)
        self._detach_suspension_probes(scaling_instances)
        self._finalize_assignment(op_name, plan)

    @staticmethod
    def _moves_by_src(plan):
        by_src = {}
        for move in plan.moves:
            by_src.setdefault(move.src_index, []).append(move)
        return by_src

    def _migrate(self, src, moves, instances):
        for move in moves:
            dst = instances[move.dst_index]
            # Merge into the universal-key group instead of replacing it:
            # the destination may already have processed records for it.
            yield from self._transfer_merge(src, dst, move.key_group)

    def _transfer_merge(self, src, dst, key_group):
        cost_model = self.job.config.transfer
        yield from self._wait_until_idle(src, key_group)
        if cost_model.extract_seconds_per_group > 0:
            yield self.sim.timeout(cost_model.extract_seconds_per_group)
        group = src.state.group(key_group)
        if group is None:
            return
        self.metrics.note_migration_started(key_group, self.sim.now)
        entries, size = group.entries, group.size_bytes
        group.entries = {}
        group.size_bytes = 0.0
        group.status = StateStatus.MIGRATED_OUT
        group.bump_version()
        link = self.job.link_between(src, dst)
        gate = self.job.transfer_gate(src.node.name)
        yield gate.acquire()
        try:
            yield self.sim.timeout(cost_model.transfer_seconds(
                size, link.bandwidth, link.latency))
        finally:
            gate.release()
        dst_group = dst.state.group(key_group)
        if dst_group is None:
            dst_group = dst.state.register_group(key_group,
                                                 StateStatus.LOCAL)
        # Stale-state hazard, accepted by design: destination-side updates
        # made while the state was in flight win over migrated values.
        merged = dict(entries)
        merged.update(dst_group.entries)
        dst_group.entries = merged
        dst_group.size_bytes += size
        dst_group.status = StateStatus.LOCAL
        dst_group.bump_version()
        self.metrics.note_migration_completed(key_group, self.sim.now)
        dst.wake.fire()
