"""Stop-Checkpoint-Restart: the mainstream-SPE scaling mechanism (§I).

The whole job halts, a global checkpoint is written, the new deployment is
provisioned, state is restored under the new assignment, and processing
resumes.  The downtime — checkpoint + provision + restore — is what the
on-the-fly mechanisms exist to avoid; this controller provides the
reference point.
"""

from __future__ import annotations

from ..engine.state import StateStatus
from .base import ScalingController

__all__ = ["StopRestartController"]


class StopRestartController(ScalingController):
    """Global halt → checkpoint → redeploy → restore → resume."""

    name = "stop_restart"

    def _execute(self, op_name, plan, scale_id):
        job = self.job
        all_instances = job.all_instances()
        instances = job.instances(op_name)
        signal_id = (scale_id, 0)
        self.metrics.signal_injected(signal_id, self.sim.now)
        for kg in plan.migrating_groups:
            self.metrics.assign_group(kg, signal_id)

        # 1. Global halt with drain-to-quiescence (stop-with-savepoint):
        #    sources stop first and the pipeline empties, so the checkpoint
        #    cut is consistent and no record is stranded in a channel.
        halt_start = self.sim.now
        for source in job.sources():
            source.pause()
        while not self._quiesced(all_instances):
            yield self.sim.timeout(0.01)
        for instance in all_instances:
            instance.pause()

        # 2. Global checkpoint: every instance snapshots all of its state.
        total_bytes = sum(inst.state.total_bytes() for inst in all_instances)
        checkpoint_seconds = total_bytes / job.config.snapshot_bandwidth
        yield self.sim.timeout(checkpoint_seconds)

        # 3. Redeploy with the new configuration.
        new_instances = []
        for _ in plan.new_instance_indices:
            new_instances.append(job.add_instance(op_name))
        yield self.sim.timeout(job.config.instance_init_seconds)
        instances = job.instances(op_name)

        # 4. Restore migrating key-groups under the new assignment.
        cost_model = job.config.transfer
        for move in plan.moves:
            src = instances[move.src_index]
            dst = instances[move.dst_index]
            group = src.state.require_group(move.key_group)
            self.metrics.note_migration_started(move.key_group, self.sim.now)
            link = job.link_between(src, dst)
            yield self.sim.timeout(cost_model.transfer_seconds(
                group.size_bytes, link.bandwidth, link.latency))
            entries, size = group.entries, group.size_bytes
            src.state.drop_group(move.key_group)
            new_group = dst.state.register_group(move.key_group,
                                                 StateStatus.LOCAL)
            new_group.entries = entries
            new_group.size_bytes = size
            new_group.bump_version()
            self.metrics.note_migration_completed(move.key_group,
                                                  self.sim.now)
        for sender, edge in job.senders_to(op_name):
            for kg, dst in plan.routing_updates().items():
                edge.set_routing(kg, dst)

        # 5. Resume; the halt counts as suspension on every instance.
        for instance in new_instances:
            instance.start()
        for instance in all_instances:
            instance.resume()
        for instance in instances:
            self.metrics.note_suspension(instance, halt_start, self.sim.now)
        self._finalize_assignment(op_name, plan)

    @staticmethod
    def _quiesced(instances) -> bool:
        """True once no element is queued, in flight or being processed."""
        for instance in instances:
            if instance.spec.is_source and instance.paused:
                pass  # a paused source may still hold admitted input
            elif instance.processing_element:
                return False
            for channel in instance.input_channels:
                if channel.queue:
                    return False
            for channel in instance.router.all_channels():
                if channel.backlog:
                    return False
        return True
