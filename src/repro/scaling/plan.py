"""Migration plans: which key-groups move where during a rescale.

The default policy matches the paper's Policy Generator (C0): uniform
repartitioning — the target assignment is the contiguous uniform assignment
for the new parallelism, and every key-group whose owner changes migrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..engine.keys import KeyGroupAssignment

__all__ = ["Migration", "MigrationPlan"]


@dataclass(frozen=True)
class Migration:
    """One key-group move."""

    key_group: int
    src_index: int
    dst_index: int


class MigrationPlan:
    """All moves of one rescale operation, plus the target assignment."""

    def __init__(self, op_name: str, old_parallelism: int,
                 new_parallelism: int, moves: List[Migration],
                 target: KeyGroupAssignment):
        self.op_name = op_name
        self.old_parallelism = old_parallelism
        self.new_parallelism = new_parallelism
        self.moves = list(moves)
        self.target = target

    @classmethod
    def uniform(cls, op_name: str, current: KeyGroupAssignment,
                new_parallelism: int) -> "MigrationPlan":
        """Uniform repartition (paper C0): diff current vs. uniform target."""
        target = current.rescaled_uniform(new_parallelism)
        moves = [Migration(kg, src, dst)
                 for kg, src, dst in current.diff(target)]
        return cls(op_name, current.parallelism, new_parallelism, moves,
                   target)

    # -- views -------------------------------------------------------------------

    @property
    def migrating_groups(self) -> List[int]:
        return sorted(m.key_group for m in self.moves)

    @property
    def is_scale_in(self) -> bool:
        return self.new_parallelism < self.old_parallelism

    @property
    def new_instance_indices(self) -> List[int]:
        """Indices of instances to provision (empty for scale-in)."""
        return list(range(self.old_parallelism, self.new_parallelism))

    @property
    def removed_instance_indices(self) -> List[int]:
        """Trailing instances to decommission (empty for scale-out)."""
        return list(range(self.new_parallelism, self.old_parallelism))

    def routing_updates(self) -> Dict[int, int]:
        """key-group → new owner, for every migrating key-group."""
        return {m.key_group: m.dst_index for m in self.moves}

    def by_path(self) -> Dict[Tuple[int, int], List[int]]:
        """Moves grouped by (src, dst) migration path, key-groups sorted."""
        paths: Dict[Tuple[int, int], List[int]] = {}
        for m in self.moves:
            paths.setdefault((m.src_index, m.dst_index), []).append(
                m.key_group)
        for kgs in paths.values():
            kgs.sort()
        return paths

    def moves_from(self, src_index: int) -> List[Migration]:
        return [m for m in self.moves if m.src_index == src_index]

    def move_for(self, key_group: int) -> Migration:
        for m in self.moves:
            if m.key_group == key_group:
                return m
        raise KeyError(key_group)

    def __len__(self) -> int:
        return len(self.moves)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"<MigrationPlan {self.op_name} "
                f"{self.old_parallelism}->{self.new_parallelism} "
                f"moves={len(self.moves)}>")
