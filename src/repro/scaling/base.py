"""Shared scaling-controller framework and instrumentation.

Every mechanism (OTFS, Megaphone, Meces, Unbound, Stop-Restart, DRRS) is a
:class:`ScalingController`; the base class provides the pieces they share —
instance provisioning, state transfer with cost accounting, in-band signal
dispatch, suspension bookkeeping — so each controller file reads as the
paper's description of that mechanism.

Instrumentation matches the paper's three decomposed overheads (§II-B):

* cumulative **propagation delay** (:math:`L_p`): per scaling signal, the
  interval from injection to the first state migration it triggers, summed;
* average **dependency-related overhead** (:math:`L_d` proxy, Fig. 12): the
  mean interval from a key-group's signal injection to the completion of its
  migration;
* cumulative **suspension time** (:math:`L_s`, Fig. 13): total time scaling
  instances spend stalled on unprocessable-but-present input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..engine.operators import InputHandler, OperatorInstance
from ..engine.records import ControlSignal, Record
from ..engine.runtime import StreamJob, _InflightState
from ..engine.state import StateStatus
from .plan import MigrationPlan

__all__ = [
    "ScaleSignalBarrier",
    "ScalingMetrics",
    "ScalingController",
    "MigrationAwareHandler",
]


@dataclass
class ScaleSignalBarrier(ControlSignal):
    """Conventional *coupled* scaling barrier (routing confirm + trigger).

    Used by the generalized-OTFS, Megaphone-style and Meces-style baselines.
    ``phase`` distinguishes Naive-Division batches.
    """

    scale_id: int = 0
    phase: int = 0
    #: key-group → new owner instance index, applied by predecessors.
    routing_updates: Dict[int, int] = field(default_factory=dict)
    size_bytes: float = 16.0

    @property
    def signal_key(self) -> Tuple[int, int]:
        return (self.scale_id, self.phase)

    @property
    def is_time_signal(self) -> bool:
        # Scheduling never reorders across a coupled scaling barrier.
        return True


class ScalingMetrics:
    """Per-scaling-operation measurements (Figs. 12 and 13)."""

    def __init__(self):
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.injections: Dict[Any, float] = {}
        self.first_migration: Dict[Any, float] = {}
        self.group_signal: Dict[int, Any] = {}
        self.group_anchor: Dict[int, Any] = {}
        self.migration_started: Dict[int, float] = {}
        self.migration_completed: Dict[int, float] = {}
        self.suspensions: List[Tuple[str, float, float]] = []
        self.remigrations: int = 0
        self.records_rerouted: int = 0

    # -- recording -----------------------------------------------------------

    def begin(self, time: float) -> None:
        self.started_at = time

    def finish(self, time: float) -> None:
        self.finished_at = time

    def signal_injected(self, signal_id: Any, time: float) -> None:
        """First injection time of a signal (multiple predecessors inject
        the same signal; the earliest counts)."""
        if signal_id not in self.injections or time < self.injections[signal_id]:
            self.injections[signal_id] = time

    def assign_group(self, key_group: int, signal_id: Any,
                     anchor_id: Any = None) -> None:
        """Bind a key-group to its triggering signal.

        ``signal_id`` drives the propagation-delay attribution (which signal
        this group's migration confirms).  ``anchor_id`` optionally anchors
        the *dependency* measurement to an earlier signal: in Naive-Division
        mechanisms every state unit logically waits on the chain started by
        the first sub-reconfiguration, so dependency is measured from there.
        """
        self.group_signal[key_group] = signal_id
        self.group_anchor[key_group] = (anchor_id if anchor_id is not None
                                        else signal_id)

    def note_migration_started(self, key_group: int, time: float) -> None:
        if key_group not in self.migration_started:
            self.migration_started[key_group] = time
        signal_id = self.group_signal.get(key_group)
        if signal_id is not None and signal_id not in self.first_migration:
            self.first_migration[signal_id] = time

    def note_migration_completed(self, key_group: int, time: float) -> None:
        self.migration_completed[key_group] = time

    def note_suspension(self, instance: OperatorInstance, start: float,
                        end: float) -> None:
        self.suspensions.append((instance.name, start, end))

    def note_remigration(self, count: int = 1) -> None:
        self.remigrations += count

    def note_reroute(self, count: int = 1) -> None:
        self.records_rerouted += count

    # -- derived quantities (Fig. 12 / Fig. 13) ---------------------------------

    def cumulative_propagation_delay(self) -> float:
        total = 0.0
        for signal_id, injected in self.injections.items():
            started = self.first_migration.get(signal_id)
            if started is not None:
                total += max(0.0, started - injected)
        return total

    def average_dependency_overhead(self) -> float:
        intervals = []
        for kg, completed in self.migration_completed.items():
            anchor_id = self.group_anchor.get(kg, self.group_signal.get(kg))
            injected = self.injections.get(anchor_id)
            if injected is not None:
                intervals.append(max(0.0, completed - injected))
        return sum(intervals) / len(intervals) if intervals else 0.0

    def total_suspension(self) -> float:
        return sum(end - start for _n, start, end in self.suspensions)

    def suspension_series(self) -> List[Tuple[float, float]]:
        """Cumulative suspension time, sampled at each interval end."""
        cumulative = 0.0
        series = []
        for _name, start, end in sorted(self.suspensions,
                                        key=lambda s: s[2]):
            cumulative += end - start
            series.append((end, cumulative))
        return series

    @property
    def duration(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class MigrationAwareHandler(InputHandler):
    """Input handler active on scaling instances during migration.

    Encodes the paper's spectrum of record-delivery policies:

    * ``scheduling=False`` — engine-faithful baseline: elements are delivered
      in the engine's normal order; when the head element's state is
      unavailable the task *commits* to that element and suspends (no legal
      way to skip it).  This is the behaviour whose inefficiency motivates
      Record Scheduling (§III-B).
    * ``scheduling=True`` — Record Scheduling: inter-channel switching to any
      processable channel, plus intra-channel bypassing of unprocessable
      records within a bounded pre-serialization buffer, never crossing
      time-semantics signals (watermarks, checkpoint barriers, coupled
      scaling barriers).

    Processability of a record is delegated to ``controller.record_ready``.
    """

    def __init__(self, instance: OperatorInstance, controller,
                 scheduling: bool = False, buffer_size: int = 200):
        super().__init__(instance)
        self.controller = controller
        self.scheduling = scheduling
        self.buffer_size = buffer_size
        self._cursor = 0
        self._committed = None  # channel we are head-blocked on

    # The element kinds a record may never be scheduled across.
    @staticmethod
    def _is_barrier_like(element) -> bool:
        return element.is_time_signal

    def _ready(self, element) -> bool:
        if isinstance(element, Record):
            return self.controller.record_ready(self.instance, element)
        return True

    def poll(self):
        channels = self.instance.input_channels
        if not channels:
            self.suspended = False
            return None

        if not self.scheduling:
            return self._poll_committed(channels)
        return self._poll_scheduled(channels)

    # -- no-scheduling baseline ---------------------------------------------------

    def _poll_committed(self, channels):
        if self._committed is not None:
            channel = self._committed
            head = channel.peek()
            if head is None:
                self._committed = None
            elif self._ready(head):
                self._committed = None
                return channel, channel.pop()
            else:
                self.suspended = True
                return None
        n = len(channels)
        saw_data = False
        for offset in range(n):
            channel = channels[(self._cursor + offset) % n]
            if channel.blocked:
                if channel.queue:
                    saw_data = True
                continue
            head = channel.peek()
            if head is None:
                continue
            self._cursor = (self._cursor + offset + 1) % n
            if self._ready(head):
                return channel, channel.pop()
            # Commit: the engine delivered this element; we must wait for it.
            self._committed = channel
            self.suspended = True
            return None
        self.suspended = saw_data
        return None

    # -- Record Scheduling --------------------------------------------------------

    def _poll_scheduled(self, channels):
        n = len(channels)
        saw_unprocessable = False
        # Inter-channel: any processable head wins.
        for offset in range(n):
            channel = channels[(self._cursor + offset) % n]
            if channel.blocked:
                if channel.queue:
                    saw_unprocessable = True
                continue
            head = channel.peek()
            if head is None:
                continue
            if self._ready(head):
                self._cursor = (self._cursor + offset + 1) % n
                return channel, channel.pop()
            saw_unprocessable = True
        if not saw_unprocessable:
            self.suspended = False
            return None
        # Intra-channel: bypass unprocessable records within the bounded
        # buffer, never crossing a time-semantics signal.
        scanned = 0
        for offset in range(n):
            channel = channels[(self._cursor + offset) % n]
            if channel.blocked:
                continue
            for element in channel.queue:
                scanned += 1
                if scanned > self.buffer_size:
                    break
                if self._is_barrier_like(element):
                    break  # cannot schedule across this signal
                if self._ready(element):
                    channel.remove(element)
                    return channel, element
            if scanned > self.buffer_size:
                break
        self.suspended = True
        return None


class ScalingController:
    """Base class: lifecycle, provisioning, transfer and bookkeeping."""

    name = "abstract"

    def __init__(self, job: StreamJob, control_latency: float = 0.002):
        self.job = job
        self.sim = job.sim
        #: Coordinator → worker command latency (control plane RPC).
        self.control_latency = control_latency
        self.metrics = ScalingMetrics()
        self._scale_ids = 0
        self.active = False
        self._current_done = None
        self._scale_proc = None
        #: Set by an abort-and-retry path just before interrupting the
        #: scale process: tells ``_run_scale``'s finally NOT to fire the
        #: caller's done event — the retry will, once it concludes.
        self._retry_pending = False

    # -- public API -----------------------------------------------------------------

    def request_rescale(self, op_name: str, new_parallelism: int):
        """Start rescaling ``op_name``; returns an Event firing when done."""
        spec = self.job.graph.operators[op_name]
        if not spec.keyed:
            raise ValueError(f"{op_name} is not a keyed (scalable) operator")
        if new_parallelism < 1:
            raise ValueError("new_parallelism must be >= 1")
        if new_parallelism > self.job.graph.num_key_groups:
            raise ValueError("parallelism cannot exceed num_key_groups")
        if self.active:
            raise RuntimeError(
                "a scaling operation is already in flight; DRRSController "
                "supports superseding it (§IV-B), other controllers do not")
        current = self.job.assignments[op_name]
        plan = MigrationPlan.uniform(op_name, current, new_parallelism)
        self._scale_ids += 1
        done = self.sim.event()
        self._current_done = done
        self.metrics = ScalingMetrics()
        self.metrics.begin(self.sim.now)
        self.active = True
        self._scale_proc = self.sim.spawn(
            self._run_scale(op_name, plan, self._scale_ids, done),
            name=f"scale:{self.name}:{op_name}")
        return done

    def _run_scale(self, op_name, plan, scale_id, done):
        if not self.job.scaling_active:
            # Entering the first concurrent rescale window: collapse the
            # batched record plane to per-record state so every protocol
            # below (outbox surgery, channel extraction, drain-to-
            # quiescence) sees exactly what the reference plane would hold.
            self.job.quiesce_batches()
        self.job.scaling_active += 1
        self.job.active_scalers.append(self)
        telemetry = self.job.telemetry
        span = None
        if telemetry is not None:
            span = telemetry.tracer.begin(
                "rescale", category="migration", track="scale",
                op=op_name, controller=self.name, scale_id=scale_id,
                old_parallelism=plan.old_parallelism,
                new_parallelism=plan.new_parallelism)
        try:
            yield from self._execute(op_name, plan, scale_id)
        finally:
            self.metrics.finish(self.sim.now)
            self.active = False
            self.job.signal_router = None
            self.job.scaling_active -= 1
            if self in self.job.active_scalers:
                self.job.active_scalers.remove(self)
            if span is not None:
                telemetry.tracer.end(
                    span,
                    records_rerouted=self.metrics.records_rerouted,
                    remigrations=self.metrics.remigrations,
                    groups_migrated=len(self.metrics.migration_completed))
            # An abort-and-retry keeps the caller's done event pending —
            # the retry attempt (which re-enters request_rescale with a
            # fresh event) settles it when the operation truly concludes.
            retrying = self._retry_pending
            self._retry_pending = False
            if not retrying and not done.triggered:
                done.succeed(self.metrics)

    def _execute(self, op_name: str, plan: MigrationPlan, scale_id: int):
        raise NotImplementedError

    # -- processability hook (used by MigrationAwareHandler) ----------------------------

    def record_ready(self, instance: OperatorInstance,
                     record: Record) -> bool:
        """Whether ``record`` can be processed on ``instance`` right now."""
        group = instance.state.group(record.key_group)
        return group is not None and group.processable

    # -- shared building blocks ----------------------------------------------------

    def _provision(self, op_name: str, plan: MigrationPlan):
        """Create, initialise and start the new instances (costs L_o)."""
        new_instances = []
        for _ in plan.new_instance_indices:
            new_instances.append(self.job.add_instance(op_name))
        if not new_instances:
            return []  # scale-in / rebalance: nothing to provision
        yield self.sim.timeout(self.job.config.instance_init_seconds)
        for instance in new_instances:
            instance.start()
        return new_instances

    def _attach_suspension_probes(self, instances):
        for instance in instances:
            instance.set_suspension_listener(self.metrics.note_suspension)

    def _detach_suspension_probes(self, instances):
        for instance in instances:
            instance.set_suspension_listener(None)

    def _install_handlers(self, instances, scheduling: bool,
                          buffer_size: int = 200):
        saved = {}
        for instance in instances:
            saved[instance] = instance.input_handler
            instance.input_handler = MigrationAwareHandler(
                instance, self, scheduling=scheduling,
                buffer_size=buffer_size)
            instance.wake.fire()
        return saved

    def _restore_handlers(self, saved) -> None:
        for instance, handler in saved.items():
            instance.input_handler = handler
            instance.wake.fire()

    def _wait_until_idle(self, instance: OperatorInstance, key_group: int):
        """Wait until ``instance`` is not mid-record on ``key_group``."""
        while instance.current_key_group == key_group:
            yield self.sim.timeout(0.0001)

    def _transfer_group(self, src: OperatorInstance, dst: OperatorInstance,
                        key_group: int,
                        arrival_status: StateStatus = StateStatus.LOCAL,
                        charge_extract: bool = True):
        """Extract one key-group at ``src``, ship it, register at ``dst``.

        Leaves a ``MIGRATED_OUT`` stub at the source so input handlers can
        recognise records that now belong elsewhere.
        """
        cost_model = self.job.config.transfer
        yield from self._wait_until_idle(src, key_group)
        if charge_extract and cost_model.extract_seconds_per_group > 0:
            yield self.sim.timeout(cost_model.extract_seconds_per_group)
            # The snapshot is cut at the END of the serialization charge:
            # a record that entered service during the charge must finish
            # first, or its update would land in the extracted-away copy
            # and be lost when the shipped state is installed downstream.
            yield from self._wait_until_idle(src, key_group)
        group = src.state.group(key_group)
        if group is None:
            raise KeyError(
                f"{src.name} does not hold key-group {key_group}")
        self.metrics.note_migration_started(key_group, self.sim.now)
        # The transfer span must open exactly at migration start so that
        # span-derived propagation delay matches ScalingMetrics.
        telemetry = self.job.telemetry
        span = None
        if telemetry is not None:
            span = telemetry.tracer.begin(
                "state-transfer", category="transfer",
                track=f"transfer:{src.name}->{dst.name}",
                key_group=key_group, bytes=group.size_bytes)
        entries = group.entries
        size = group.size_bytes
        sub_present = group.sub_groups_present
        # Changelog-tail fast path: when the source backend holds a durable
        # base covering this group's current version, the destination can
        # fetch the base from durable storage and only the changelog tail
        # moves over the wire.  Queried before the extraction bumps the
        # group's version (which would invalidate the durable base).
        tail_fn = getattr(src.state, "changelog_tail_bytes", None)
        tail_bytes = tail_fn(key_group) if tail_fn is not None else None
        wire_bytes = size if tail_bytes is None else min(size, tail_bytes)
        group.entries = {}
        group.size_bytes = 0.0
        group.status = StateStatus.MIGRATED_OUT
        group.bump_version()
        # From this instant until installation at dst, the bytes live only
        # in the in-flight registry: checkpoints fold them into the source
        # snapshot (§IV-C) and an abort restores them from here.
        flight_key = (src.spec.name, key_group)
        self.job.inflight_state[flight_key] = _InflightState(
            op_name=src.spec.name, key_group=key_group, entries=entries,
            size_bytes=size, sub_groups_present=sub_present,
            src_name=src.name, src_index=src.index, dst_index=dst.index)
        src.wake.fire()
        link = self.job.link_between(src, dst)
        gate = self.job.transfer_gate(src.node.name)
        # Ticket pattern: if an abort interrupts us while queued on the
        # gate, ``cancel`` withdraws the ticket instead of leaking the slot
        # to the abandoned event.
        ticket = gate.acquire()
        try:
            yield ticket
            yield self.sim.timeout(cost_model.transfer_seconds(
                wire_bytes, link.bandwidth, link.latency))
            hook = self.job.transfer_fault_hook
            if hook is not None:
                extra = hook(src, dst, key_group)
                if extra:
                    # Injected stall holds the NIC slot, as a real stalled
                    # transfer would.
                    yield self.sim.timeout(extra)
        finally:
            gate.cancel(ticket)
        flight = self.job.inflight_state.pop(flight_key, None)
        if flight is None:
            # Rolled back under our feet (the abort path consumed the
            # flight before interrupting us): nothing to install.
            return
        landed_hook = self.job.flight_landed_hook
        if landed_hook is not None:
            landed_hook(flight, dst)
        dst.state.install_group(key_group, entries, size,
                                status=arrival_status,
                                sub_groups_present=sub_present)
        self.metrics.note_migration_completed(key_group, self.sim.now)
        if span is not None:
            telemetry.tracer.end(span)
        dst.wake.fire()

    def _finalize_assignment(self, op_name: str,
                             plan: MigrationPlan) -> None:
        """Commit the authoritative assignment after all migrations, and
        decommission trailing instances on scale-in."""
        self.job.assignments[op_name] = plan.target
        # Drop MIGRATED_OUT stubs so post-scaling state is clean.
        for instance in self.job.instances(op_name):
            for group in list(instance.state.groups()):
                if group.status is StateStatus.MIGRATED_OUT:
                    instance.state.drop_group(group.key_group)
        if plan.is_scale_in:
            self.job.remove_trailing_instances(op_name,
                                               plan.new_parallelism)
