"""Scaling framework and baseline mechanisms (OTFS, Megaphone, Meces, ...)."""

from .base import (MigrationAwareHandler, ScaleSignalBarrier,
                   ScalingController, ScalingMetrics)
from .megaphone import MegaphoneController
from .meces import MecesController
from .otfs import OTFSController
from .plan import Migration, MigrationPlan
from .stop_restart import StopRestartController
from .unbound import UnboundController

__all__ = [
    "MigrationAwareHandler",
    "ScaleSignalBarrier",
    "ScalingController",
    "ScalingMetrics",
    "MegaphoneController",
    "MecesController",
    "OTFSController",
    "Migration",
    "MigrationPlan",
    "StopRestartController",
    "UnboundController",
]
