"""Trace exporters: Chrome trace-event JSON, JSONL, and summary tables.

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format consumed by Perfetto (https://ui.perfetto.dev) and Chromium's
  ``about:tracing``.  Every tracer *track* (operator instance, subscale,
  coordinator lane) becomes one named thread inside a single ``repro-sim``
  process, so a DRRS rescale renders as nested phase bars per instance.
* :func:`write_jsonl` — one JSON object per span/event, in deterministic
  order, for ad-hoc analysis (``jq``, pandas).
* :func:`phase_summary_table` — human-readable per-phase aggregate built on
  :func:`repro.experiments.report.format_table`.

All exports are pure functions of the telemetry contents: exporting twice,
or exporting after more simulation, never mutates the sink.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .tracer import Telemetry, Tracer

__all__ = ["to_chrome_trace", "write_chrome_trace", "to_jsonl_lines",
           "write_jsonl", "phase_summary_table"]

#: Simulated seconds → trace microseconds (the Trace Event Format unit).
_US = 1e6


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_json_safe(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def _tracer_of(telemetry) -> Tracer:
    return telemetry.tracer if isinstance(telemetry, Telemetry) else telemetry


def to_chrome_trace(telemetry, process_name: str = "repro-sim") -> Dict:
    """Build a Trace Event Format document from a Telemetry (or Tracer).

    Tracks are assigned thread ids in sorted-name order, so the document is
    deterministic for identically-seeded runs.
    """
    tracer = _tracer_of(telemetry)
    pid = 1
    tids = {track: i + 1 for i, track in enumerate(tracer.tracks())}
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": process_name},
    }]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": track or "(main)"}})
        events.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
    for span in sorted((s for s in tracer.spans if s.closed),
                       key=lambda s: (s.start, s.span_id)):
        events.append({
            "name": span.name,
            "cat": span.category or "default",
            "ph": "X",
            "ts": span.start * _US,
            "dur": span.duration * _US,
            "pid": pid,
            "tid": tids[span.track],
            "args": _json_safe(span.attrs),
        })
    for event in sorted(tracer.events, key=lambda e: (e.time, e.event_id)):
        events.append({
            "name": event.name,
            "cat": event.category or "default",
            "ph": "i",
            "s": "t",
            "ts": event.time * _US,
            "pid": pid,
            "tid": tids[event.track],
            "args": _json_safe(event.attrs),
        })
    doc: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if isinstance(telemetry, Telemetry):
        doc["metrics"] = telemetry.registry.snapshot()
        doc["droppedRecords"] = tracer.dropped
    return doc


def write_chrome_trace(telemetry, path: str,
                       process_name: str = "repro-sim") -> str:
    with open(path, "w") as f:
        json.dump(to_chrome_trace(telemetry, process_name=process_name), f,
                  indent=1)
        f.write("\n")
    return path


def to_jsonl_lines(telemetry) -> List[str]:
    """One compact JSON object per record: spans first, then events,
    each in (time, id) order."""
    tracer = _tracer_of(telemetry)
    lines = []
    for span in sorted((s for s in tracer.spans if s.closed),
                       key=lambda s: (s.start, s.span_id)):
        lines.append(json.dumps({
            "kind": "span", "name": span.name, "cat": span.category,
            "track": span.track, "start": span.start, "end": span.end,
            "parent_id": span.parent_id,
            "attrs": _json_safe(span.attrs)}, sort_keys=True))
    for event in sorted(tracer.events, key=lambda e: (e.time, e.event_id)):
        lines.append(json.dumps({
            "kind": "instant", "name": event.name, "cat": event.category,
            "track": event.track, "time": event.time,
            "attrs": _json_safe(event.attrs)}, sort_keys=True))
    return lines


def write_jsonl(telemetry, path: str) -> str:
    with open(path, "w") as f:
        for line in to_jsonl_lines(telemetry):
            f.write(line + "\n")
    return path


def phase_summary_table(telemetry, title: str = "Telemetry phase summary",
                        category: Optional[str] = None) -> str:
    """Aggregate spans by (category, name) into an aligned text table."""
    from ..experiments.report import format_table
    from .phases import phase_rows
    rows = phase_rows(telemetry, category=category)
    return format_table(
        rows, columns=["category", "name", "count", "total_s", "mean_s",
                       "min_s", "max_s"],
        title=title)
