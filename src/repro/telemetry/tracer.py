"""Structured tracer: typed events and spans at simulated time.

A :class:`Span` is a named interval (``begin``/``end`` at sim-time) on a
*track* — typically one operator instance, one subscale, or a coordinator
lane — with a category and free-form attributes.  An *instant* event is a
zero-duration point.  Both land in a bounded in-memory sink; when the sink
fills, further records are counted in :attr:`Tracer.dropped` and discarded
(keeping the earliest records keeps two identically-seeded runs identical
even at the cap).

:class:`Telemetry` bundles a tracer with a :class:`~.registry.MetricsRegistry`
— it is the single object hot paths test for::

    tel = self.job.telemetry
    if tel is not None:            # zero work when telemetry is disabled
        tel.tracer.instant(...)

The tracer never schedules simulation events itself, so enabling it cannot
perturb simulated behaviour; the optional queue-depth sampler (see
:meth:`Telemetry.start_sampler`) is the one opt-in exception.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .registry import MetricsRegistry

__all__ = ["Span", "InstantEvent", "Tracer", "Telemetry"]


@dataclass
class Span:
    """One named interval on a track.  ``end`` is None while open."""

    span_id: int
    name: str
    category: str
    track: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.end is not None


@dataclass
class InstantEvent:
    """A zero-duration point event."""

    event_id: int
    name: str
    category: str
    track: str
    time: float
    attrs: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Bounded in-memory sink of spans and instant events."""

    def __init__(self, sim, capacity: int = 200_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.spans: List[Span] = []
        self.events: List[InstantEvent] = []
        #: Records discarded because the sink was full.
        self.dropped = 0
        self._ids = itertools.count(1)
        #: Per-track stack of open spans, for implicit parenting.
        self._open: Dict[str, List[Span]] = {}
        #: Optional ``listener(span)`` called when a span opens — the fault
        #: injector's phase-trigger point.  None (the default) costs one
        #: attribute check per begin().
        self.span_listener = None

    # -- recording -----------------------------------------------------------

    def _full(self) -> bool:
        return len(self.spans) + len(self.events) >= self.capacity

    def begin(self, name: str, category: str = "", track: str = "",
              parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Open a span at ``sim.now``.  Close it with :meth:`end`.

        When ``parent`` is omitted, the innermost open span on the same
        track becomes the parent (natural nesting).
        """
        if self._full():
            self.dropped += 1
            return Span(0, name, category, track, self.sim.now)
        stack = self._open.setdefault(track, [])
        parent_id = parent.span_id if parent is not None else (
            stack[-1].span_id if stack else None)
        span = Span(next(self._ids), name, category, track,
                    self.sim.now, parent_id=parent_id, attrs=dict(attrs))
        self.spans.append(span)
        stack.append(span)
        if self.span_listener is not None:
            self.span_listener(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` at ``sim.now``; extra attrs merge in."""
        if span.span_id == 0:  # placeholder from an over-capacity begin()
            return span
        if span.closed:
            raise ValueError(f"span {span.name!r} already ended")
        span.end = self.sim.now
        if attrs:
            span.attrs.update(attrs)
        stack = self._open.get(span.track)
        if stack and span in stack:
            stack.remove(span)
        return span

    def complete(self, name: str, category: str = "", track: str = "",
                 start: Optional[float] = None, end: Optional[float] = None,
                 **attrs: Any) -> Span:
        """Record an already-finished interval (e.g. a measured stall)."""
        if self._full():
            self.dropped += 1
            return Span(0, name, category, track, start or 0.0, end=end)
        start = self.sim.now if start is None else start
        end = self.sim.now if end is None else end
        if end < start:
            raise ValueError("span cannot end before it starts")
        span = Span(next(self._ids), name, category, track, start, end=end,
                    attrs=dict(attrs))
        self.spans.append(span)
        return span

    def instant(self, name: str, category: str = "", track: str = "",
                **attrs: Any) -> Optional[InstantEvent]:
        """Record a point event at ``sim.now``."""
        if self._full():
            self.dropped += 1
            return None
        event = InstantEvent(next(self._ids), name, category, track,
                             self.sim.now, attrs=dict(attrs))
        self.events.append(event)
        return event

    # -- queries -------------------------------------------------------------

    def closed_spans(self, category: Optional[str] = None,
                     name: Optional[str] = None) -> List[Span]:
        """Finished spans, optionally filtered, in deterministic order."""
        out = [s for s in self.spans if s.closed
               and (category is None or s.category == category)
               and (name is None or s.name == name)]
        out.sort(key=lambda s: (s.start, s.span_id))
        return out

    def events_named(self, name: str) -> List[InstantEvent]:
        return [e for e in self.events if e.name == name]

    def tracks(self) -> List[str]:
        names = {s.track for s in self.spans} | {e.track for e in self.events}
        return sorted(names)


class Telemetry:
    """Registry + tracer bundle attached to a :class:`StreamJob`."""

    def __init__(self, sim, capacity: int = 200_000):
        self.sim = sim
        self.registry = MetricsRegistry()
        self.tracer = Tracer(sim, capacity=capacity)
        self._sampler_running = False

    # -- kernel probe (installed on the Simulator when enabled) --------------

    def on_kernel_event(self) -> None:
        self.registry.counter("sim.events_dispatched").inc()

    def on_kernel_discount(self) -> None:
        # A dispatch backed itself out (superseded schedule position, see
        # Simulator.discount()): counters only go up, so the discounts get
        # their own counter and ``events_processed`` equals
        # ``sim.events_dispatched - sim.events_discounted``.
        self.registry.counter("sim.events_discounted").inc()

    # -- opt-in periodic sampling (perturbs the event count; see module doc) --

    def start_sampler(self, job, interval: float) -> None:
        """Sample per-instance queue depths into the tracer every
        ``interval`` simulated seconds.  Adds kernel events, so only use it
        when bit-identity with non-telemetry runs does not matter."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if self._sampler_running:
            return
        self._sampler_running = True

        def sample_loop():
            while self._sampler_running:
                yield job.sim.timeout(interval)
                for inst in job.all_instances():
                    # len(ch) is the visibility-aware logical depth — what
                    # the per-record plane's queue would hold right now.
                    depth = sum(len(ch) for ch in inst.input_channels)
                    backlog = sum(ch.backlog
                                  for ch in inst.router.all_channels())
                    self.registry.gauge("instance.inbox_depth",
                                        instance=inst.name).set(depth)
                    self.tracer.instant(
                        "queue.sample", category="sampling",
                        track=inst.name, inbox_depth=depth,
                        outbox_backlog=backlog)

        job.sim.spawn(sample_loop(), name="telemetry-sampler")

    def stop_sampler(self) -> None:
        self._sampler_running = False
