"""Telemetry: metrics registry, structured span tracing, trace exporters.

The runtime-observability subsystem.  It answers *where time goes* — per
DRRS phase, per operator instance, per channel — the way production stream
processors do, and is the substrate every performance investigation in this
repo builds on.  See ``docs/observability.md`` for the full design.

Quick start::

    job = workload.build()
    tel = job.enable_telemetry()          # zero overhead until this call
    job.run(until=30)
    DRRSController(job).request_rescale("agg", 12)
    job.run(until=60)

    from repro.telemetry import write_chrome_trace, migration_breakdown
    write_chrome_trace(tel, "trace.json")  # open in ui.perfetto.dev
    print(migration_breakdown(tel)["cumulative_propagation_delay_s"])
"""

from .exporters import (phase_summary_table, to_chrome_trace,
                        to_jsonl_lines, write_chrome_trace, write_jsonl)
from .phases import migration_breakdown, phase_rows
from .shards import (shard_sync_events, to_shard_sync_trace,
                     write_shard_sync_trace)
from .registry import (Counter, Gauge, Histogram, MetricsRegistry,
                       diff_snapshots)
from .tracer import InstantEvent, Span, Telemetry, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "Span",
    "InstantEvent",
    "Tracer",
    "Telemetry",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl_lines",
    "write_jsonl",
    "phase_summary_table",
    "phase_rows",
    "migration_breakdown",
    "shard_sync_events",
    "to_shard_sync_trace",
    "write_shard_sync_trace",
]
