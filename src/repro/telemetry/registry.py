"""Metrics registry: labelled counters, gauges and histograms.

The registry is the *aggregate* half of the telemetry subsystem (the tracer
is the *timeline* half): cheap monotonically updated instruments the hot
paths bump without allocating, plus a :meth:`MetricsRegistry.snapshot` /
:func:`diff_snapshots` API so experiments can attribute deltas to a phase
("how many records were re-routed during subscale 3?").

Instruments are identified by name + a frozen label set; repeated
``registry.counter("x", op="agg")`` calls return the same object.  All
iteration orders are sorted, so snapshots of identically-seeded runs are
byte-identical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "diff_snapshots"]

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, credits, active subscales)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Cumulative-bucket histogram (Prometheus-style ``le`` buckets)."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, labels: LabelKey,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.bounds = tuple(buckets)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +inf."""
        out = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create home for every instrument in one run."""

    def __init__(self):
        self._instruments: Dict[Tuple[str, str, LabelKey], object] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, str], factory):
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, key[2])
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get(
            "histogram", name, labels,
            lambda n, lk: Histogram(n, lk, buckets=buckets))

    def instruments(self) -> List[object]:
        """All instruments in deterministic (kind, name, labels) order."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, object]:
        """Flat, JSON-serialisable view of every instrument.

        Keys are ``name{k=v,...}`` (labels sorted); histogram values are
        ``{"count", "sum", "buckets"}`` dicts, everything else a float.
        """
        snap: Dict[str, object] = {}
        for (kind, name, labels), inst in sorted(self._instruments.items()):
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            key = f"{name}{{{label_str}}}" if label_str else name
            if kind == "histogram":
                snap[key] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "buckets": [[b, c] for b, c in inst.cumulative()
                                if b != math.inf] + [["inf", inst.count]],
                }
            else:
                snap[key] = inst.value
        return snap


def diff_snapshots(before: Dict[str, object],
                   after: Dict[str, object]) -> Dict[str, object]:
    """Per-key change between two :meth:`MetricsRegistry.snapshot` calls.

    Scalar instruments diff numerically; histograms diff count/sum.  Keys
    absent from ``before`` diff against zero; keys whose value did not
    change are omitted.
    """
    out: Dict[str, object] = {}
    for key, new in after.items():
        old = before.get(key)
        if isinstance(new, dict):
            old_count = old["count"] if isinstance(old, dict) else 0
            old_sum = old["sum"] if isinstance(old, dict) else 0.0
            if new["count"] != old_count or new["sum"] != old_sum:
                out[key] = {"count": new["count"] - old_count,
                            "sum": new["sum"] - old_sum}
        else:
            base = old if isinstance(old, (int, float)) else 0.0
            if new != base:
                out[key] = new - base
    return out
