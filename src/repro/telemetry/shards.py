"""Shard sync-protocol telemetry: counters and blocked-wait traces.

The sharded kernel (:mod:`repro.simulation.sharded`) runs its workers in
separate processes, outside the in-process tracer — so each worker ships
its synchronization-protocol counters (null messages sent/suppressed,
grant rounds, cut-edge bytes, blocked waits) home in its result bundle
instead of writing spans live.  This module turns those bundles into the
same artefact shapes the rest of the telemetry subsystem produces:

* :func:`shard_sync_events` / :func:`to_shard_sync_trace` — a Chrome
  Trace Event Format document with one thread per shard.  Counter totals
  render as one instant event per shard; every recorded blocked-wait
  interval renders as a ``blocked-wait`` span, so the synchronization
  stalls line up visually across the pipeline (open in
  https://ui.perfetto.dev).
* :func:`write_shard_sync_trace` — the file-writing convenience used by
  ``repro shard-check --trace-out``.

Times in the trace are *wall* seconds since worker start (synchronization
stalls are a host-time phenomenon; simulated time is the thing being
synchronized), which is also why the per-shard tracks need no cross-shard
clock alignment beyond "all workers fork together".
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["shard_sync_events", "to_shard_sync_trace",
           "write_shard_sync_trace"]

#: Wall seconds → trace microseconds (the Trace Event Format unit).
_US = 1e6

#: Counter keys rendered into each shard's summary instant event, in
#: display order.  ``blocked_intervals`` is rendered as spans instead.
_COUNTER_KEYS = ("transport", "null_sent", "null_suppressed",
                 "grant_rounds", "frames_sent", "msgs_sent",
                 "bytes_shipped", "spills", "batch_fallbacks",
                 "blocked_waits", "blocked_wait_s", "writer_full_wait_s",
                 "quantum_initial", "quantum_final", "quantum_max",
                 "quantum_widenings", "quantum_shrinks")


def shard_sync_events(sync_per_shard: Sequence[Dict[str, Any]],
                      transport: Optional[str] = None) -> List[Dict]:
    """Trace events for a sharded run's sync bundles, one thread per shard.

    ``sync_per_shard`` is :attr:`ShardedRunResult.sync_per_shard` — the
    ``sync`` dict each worker returned (shard id = list index).  Events
    are deterministic: threads in shard order, spans in interval order.
    """
    pid = 1
    events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": "repro-shards"
                         + (f" ({transport})" if transport else "")},
    }]
    for sid, sync in enumerate(sync_per_shard):
        tid = sid + 1
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": f"shard-{sid}"}})
        events.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
        summary = {k: sync[k] for k in _COUNTER_KEYS if k in sync}
        events.append({"name": "sync-counters", "cat": "shard-sync",
                       "ph": "i", "s": "t", "ts": 0.0,
                       "pid": pid, "tid": tid, "args": summary})
        for start, end in sync.get("blocked_intervals", ()):
            events.append({
                "name": "blocked-wait", "cat": "shard-sync", "ph": "X",
                "ts": float(start) * _US,
                "dur": max(0.0, float(end) - float(start)) * _US,
                "pid": pid, "tid": tid, "args": {},
            })
    return events


def to_shard_sync_trace(sync_per_shard: Sequence[Dict[str, Any]],
                        transport: Optional[str] = None) -> Dict[str, Any]:
    """A full Chrome Trace Event Format document (see module docstring)."""
    return {"traceEvents": shard_sync_events(sync_per_shard,
                                             transport=transport),
            "displayTimeUnit": "ms"}


def write_shard_sync_trace(sync_per_shard: Sequence[Dict[str, Any]],
                           path: str,
                           transport: Optional[str] = None) -> str:
    with open(path, "w") as f:
        json.dump(to_shard_sync_trace(sync_per_shard,
                                      transport=transport), f, indent=1)
        f.write("\n")
    return path
