"""Phase-level analysis of traces: the paper's Fig. 12/13 decomposition.

Turns raw spans into the quantities the evaluation reasons about:

* :func:`phase_rows` — per-(category, name) aggregate durations, the input
  of the ``repro trace`` summary table;
* :func:`migration_breakdown` — for one rescale operation, the full DRRS
  phase decomposition: decouple time, per-subscale waves, state-transfer
  time and bytes, cumulative **propagation delay** (signal injection → first
  state migration per subscale, §II-B's :math:`L_p`) and cumulative
  **suspension time** (:math:`L_s`) — derived *purely from spans*, so it can
  be cross-checked against :class:`repro.scaling.base.ScalingMetrics`.

Span/event naming contract (what the instrumented hot paths emit):

=====================  ==============  =======================================
name                   category        emitted by
=====================  ==============  =======================================
``rescale``            ``migration``   ScalingController._run_scale
``decouple``           ``drrs.phase``  ScaleCoordinator (A0/B0 deploy update)
``subscale-<i>``       ``drrs.phase``  ScaleCoordinator (launch → done)
``signal.injected``    ``drrs.phase``  ScaleCoordinator (instant, per subscale)
``state-transfer``     ``transfer``    ScalingController._transfer_group
``suspended``          ``suspension``  OperatorInstance wake-up accounting
``reroute.flush``      ``reroute``     ReRouteManager drain process
``checkpoint.sync``    ``checkpoint``  aligned-snapshot sync pause
``recovery.restore``   ``recovery``    RecoveryManager rollback
``scale.rollback``     ``recovery``    DRRSController.abort_and_rollback
``scale.retry``        ``recovery``    DRRSController._retry (instant)
``fault.injected``     ``fault``       FaultInjector (instant, per fault)
=====================  ==============  =======================================
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .tracer import Telemetry, Tracer

__all__ = ["phase_rows", "migration_breakdown"]


def _tracer_of(telemetry) -> Tracer:
    return telemetry.tracer if isinstance(telemetry, Telemetry) else telemetry


def phase_rows(telemetry, category: Optional[str] = None) -> List[Dict]:
    """Aggregate closed spans by (category, name)."""
    tracer = _tracer_of(telemetry)
    groups: Dict[tuple, List[float]] = {}
    for span in tracer.spans:
        if not span.closed:
            continue
        if category is not None and span.category != category:
            continue
        groups.setdefault((span.category, span.name),
                          []).append(span.duration)
    rows = []
    for (cat, name), durations in sorted(groups.items()):
        rows.append({
            "category": cat,
            "name": name,
            "count": len(durations),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
            "min_s": min(durations),
            "max_s": max(durations),
        })
    return rows


def migration_breakdown(telemetry,
                        scale_id: Optional[int] = None) -> Dict:
    """Decompose one rescale operation's trace into the paper's phases.

    Picks the ``rescale`` span with the given ``scale_id`` (default: the
    latest one) and attributes every subscale wave, state transfer,
    re-route flush and suspension interval inside its window to it.
    """
    tracer = _tracer_of(telemetry)
    rescales = tracer.closed_spans(category="migration", name="rescale")
    if scale_id is not None:
        rescales = [s for s in rescales
                    if s.attrs.get("scale_id") == scale_id]
    if not rescales:
        raise ValueError("no completed rescale span in this trace")
    scale = rescales[-1]
    t0, t1 = scale.start, scale.end
    op = scale.attrs.get("op", "")

    def within(span) -> bool:
        return span.closed and t0 <= span.end <= t1

    # -- waves: one span per subscale -------------------------------------
    waves = []
    kg_to_subscale: Dict[int, int] = {}
    for span in tracer.closed_spans(category="drrs.phase"):
        if not span.name.startswith("subscale-") or not within(span):
            continue
        sid = span.attrs.get("subscale_id")
        for kg in span.attrs.get("key_groups", ()):
            kg_to_subscale[kg] = sid
        waves.append({
            "subscale_id": sid,
            "start": span.start,
            "end": span.end,
            "duration_s": span.duration,
            "key_groups": list(span.attrs.get("key_groups", ())),
            "bytes_moved": span.attrs.get("bytes_moved", 0.0),
            "src": span.attrs.get("src"),
            "dst": span.attrs.get("dst"),
        })
    waves.sort(key=lambda w: (w["start"], w["subscale_id"]))

    # -- state transfers ----------------------------------------------------
    transfers = [s for s in tracer.closed_spans(category="transfer")
                 if within(s)]
    bytes_moved = sum(s.attrs.get("bytes", 0.0) for s in transfers)
    transfer_total = sum(s.duration for s in transfers)

    # -- propagation delay: injection → first transfer, per subscale --------
    injected_at: Dict[int, float] = {}
    for event in _tracer_of(telemetry).events_named("signal.injected"):
        if t0 <= event.time <= t1:
            sid = event.attrs.get("subscale_id")
            if sid not in injected_at or event.time < injected_at[sid]:
                injected_at[sid] = event.time
    first_transfer: Dict[int, float] = {}
    for span in transfers:
        sid = kg_to_subscale.get(span.attrs.get("key_group"))
        if sid is None:
            continue
        if sid not in first_transfer or span.start < first_transfer[sid]:
            first_transfer[sid] = span.start
    propagation = sum(
        max(0.0, first_transfer[sid] - injected)
        for sid, injected in injected_at.items() if sid in first_transfer)

    # -- suspension on the scaled operator's instances ----------------------
    suspension = sum(
        s.duration for s in tracer.closed_spans(category="suspension")
        if within(s) and s.track.startswith(f"{op}["))

    # -- decouple & re-route ------------------------------------------------
    decouple = sum(s.duration
                   for s in tracer.closed_spans(category="drrs.phase",
                                                name="decouple")
                   if within(s))
    reroute_flushes = [s for s in tracer.closed_spans(category="reroute")
                       if within(s)]
    records_rerouted = sum(s.attrs.get("records", 0)
                           for s in reroute_flushes)

    return {
        "op": op,
        "controller": scale.attrs.get("controller", ""),
        "scale_id": scale.attrs.get("scale_id"),
        "start": t0,
        "end": t1,
        "duration_s": t1 - t0,
        "decouple_s": decouple,
        "state_transfer_s": transfer_total,
        "bytes_moved": bytes_moved,
        "cumulative_propagation_delay_s": propagation,
        "total_suspension_s": suspension,
        "records_rerouted": records_rerouted,
        "num_subscales": len(waves),
        "waves": waves,
    }
