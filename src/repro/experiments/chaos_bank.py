"""Bank of seeded chaos scenarios exercising §IV-C's robustness claims.

Each scenario wires a keyed-sum pipeline (the canonical scaling testbed),
an oracle that counts what the generator actually produced, periodic
aligned checkpoints, a :class:`~repro.engine.recovery.RecoveryManager`
and a :class:`~repro.faults.FaultInjector`, then declares what must hold
after the dust settles.  Run one with::

    python -m repro chaos crash-mid-subscale --seed 7

Design notes on the fault/checkpoint interplay the scenarios encode:

* **Drop/duplicate windows corrupt checkpoints cut inside them** — a
  checkpoint completed mid-window has source offsets past records that
  were lost (or state that counted records twice), so replay from it
  cannot restore exactly-once.  The drop/duplicate scenarios therefore
  pause the checkpoint coordinator just before the window and crash
  before resuming it: recovery lands on a pre-window checkpoint and
  replay repairs the damage.  (Crashes and stalls need no such care:
  they never corrupt a completed checkpoint.)
* **``crash-mid-subscale`` is the §IV-C acceptance scenario** — a
  checkpoint completes *during* the DRRS scaling operation (migrating
  key-group bytes folded into the departing instance's snapshot), the
  crash lands while subscales are still in flight, recovery restores
  that mid-scaling checkpoint, and the controller's retry completes the
  rescale.  The expectations pin all of that, not just the invariants.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..engine import (CheckpointCoordinator, JobConfig, JobGraph,
                      KeyedReduceLogic, OperatorSpec, Partitioning, Record,
                      StateTransferCostModel, StreamJob, Watermark)
from ..engine.recovery import RecoveryManager
from ..faults import (ChaosScenario, ChaosSetup, CrashInstance,
                      DelayRecords, DropRecords, DuplicateRecords,
                      FaultInjector, StallTransfers, StallUploads)

__all__ = ["CHAOS_SCENARIOS", "chaos_scenario"]


def _config_with_backend(job_config, state_backend: Optional[str]):
    """Overlay a state-backend choice on an (optional) JobConfig."""
    if state_backend is None:
        return job_config
    if job_config is None:
        return JobConfig(state_backend=state_backend)
    return dataclasses.replace(job_config, state_backend=state_backend)


def _keyed_job(stop_at: float, num_key_groups: int = 16,
               parallelism: int = 2, keys: int = 24,
               state_bytes_per_group: float = 2e6,
               gap: float = 0.01, job_config=None,
               state_backend: Optional[str] = None):
    """source → keyed sum → sink plus a counting oracle.

    The generator tallies ``produced[key]`` as it offers records, so the
    oracle survives replay-history trimming and is blind to every fault
    downstream of the source.  The sink collects its input so the
    semantic trace (backend-equivalence invariant) can diff per-key final
    sink values across backends.
    """
    graph = JobGraph("chaos", num_key_groups=num_key_groups)
    graph.add_source("src", parallelism=1, service_time=5e-5)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=parallelism, service_time=2e-4, keyed=True,
        initial_state_bytes_per_group=state_bytes_per_group))
    graph.add_sink("sink", collect=True)
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    job_config = _config_with_backend(job_config, state_backend)
    job = StreamJob(graph, config=job_config).build()
    produced: Dict[str, int] = {}

    def gen():
        src = job.sources()[0]
        i = 0
        while job.sim.now < stop_at:
            key = f"k{i % keys}"
            src.offer(Record(key=key, event_time=job.sim.now, count=1))
            produced[key] = produced.get(key, 0) + 1
            if i % 20 == 0:
                src.offer(Watermark(timestamp=job.sim.now))
            i += 1
            yield job.sim.timeout(gap)

    job.sim.spawn(gen(), name="chaos-driver")
    return job, produced


def _rescale_at(job, controller, op_name: str, when: float,
                new_parallelism: int) -> Dict:
    """Kick off a rescale at ``when``; returns a holder for its done."""
    holder: Dict = {"done": None}

    def kick():
        holder["done"] = controller.request_rescale(op_name,
                                                    new_parallelism)

    job.sim.call_at(when, kick)
    return holder


def _expect_rescaled(holder, job, op_name: str,
                     parallelism: int) -> List[str]:
    problems = []
    done = holder["done"]
    if done is None:
        problems.append("rescale was never requested")
    elif not done.triggered:
        problems.append("rescale never completed")
    elif not done._ok:
        problems.append(f"rescale failed: {done.value!r}")
    if len(job.instances(op_name)) != parallelism:
        problems.append(
            f"{op_name} has {len(job.instances(op_name))} instances, "
            f"want {parallelism}")
    return problems


def _expect_spans(job, want_rollback: bool = True,
                  want_retry: bool = True) -> List[str]:
    problems = []
    tracer = job.telemetry.tracer
    if want_rollback and not tracer.closed_spans(category="recovery",
                                                 name="scale.rollback"):
        problems.append("no scale.rollback span recorded")
    if want_retry and not tracer.events_named("scale.retry"):
        problems.append("no scale.retry instant recorded")
    return problems


# -- scenarios ---------------------------------------------------------------


def _crash_mid_subscale(seed: int, job_config=None,
                        state_backend: Optional[str] = None) -> ChaosSetup:
    """§IV-C acceptance: crash mid-subscale, recover from a checkpoint
    taken during the scaling operation, finish the rescale via retry.

    ``job_config`` lets the plane-equivalence tests force
    ``record_plane="single"``; the default job starts batched and is
    collapsed by the recovery/injector hooks, and both must behave
    identically.
    """
    from ..core.drrs import DRRSController

    # A per-group coordination floor keeps the migration window wide
    # under *both* backends: the changelog tail fast path shrinks the
    # wire bytes to almost nothing, and without the floor the subscale
    # would finish before the crash lands, voiding the scenario.
    slow_handoff = StateTransferCostModel(handshake_seconds=0.35)
    if job_config is None:
        job_config = JobConfig(transfer=slow_handoff)
    else:
        job_config = dataclasses.replace(job_config,
                                         transfer=slow_handoff)
    job, produced = _keyed_job(stop_at=14.0,
                               state_bytes_per_group=24e6,
                               job_config=job_config,
                               state_backend=state_backend)
    job.enable_telemetry()
    checkpoints = CheckpointCoordinator(job, interval=0.75)
    checkpoints.start()
    recovery = RecoveryManager(job, restart_seconds=0.5,
                               retain_checkpoints=100).install()
    controller = DRRSController(job)
    holder = _rescale_at(job, controller, "agg", 6.0, 4)
    injector = FaultInjector(job, recovery=recovery, seed=seed)
    injector.add(CrashInstance("agg", 1, at=8.0))

    def expect(setup) -> List[str]:
        problems = _expect_rescaled(holder, job, "agg", 4)
        problems += _expect_spans(job)
        if not recovery.recoveries:
            problems.append("crash caused no recovery")
        else:
            _when, cid = recovery.recoveries[0]
            ckpt = recovery.checkpoint(cid)
            if ckpt is None:
                problems.append(f"restored checkpoint #{cid} was pruned")
            elif not ckpt.mid_scaling:
                problems.append(
                    f"restored checkpoint #{cid} predates the scaling "
                    "operation — the mid-scaling fold was never "
                    "exercised")
        return problems

    return ChaosSetup(job=job, injector=injector, keyed_ops=["agg"],
                      horizon=45.0, recovery=recovery,
                      oracle={"agg": produced}, expectations=[expect])


def _autoscale_crash_mid_subscale(
        seed: int, state_backend: Optional[str] = None) -> ChaosSetup:
    """Closed-loop acceptance: the *autoscaler* initiates the subscale
    (reacting to a load ramp), a phase-triggered crash lands while that
    subscale is moving state, DRRS aborts → rolls back → retries under
    the same done event, and the decision log must show the controller
    deferring (never overlapping) while its rescale was in flight."""
    from ..autoscale import (AutoscaleController,
                             UtilizationThresholdPolicy)
    from ..core.drrs import DRRSController

    graph = JobGraph("chaos", num_key_groups=16)
    graph.add_source("src", parallelism=1, service_time=5e-5)
    graph.add_operator(OperatorSpec(
        "agg",
        logic_factory=lambda: KeyedReduceLogic(
            lambda old, r: (old or 0) + r.count),
        parallelism=2, service_time=2e-3, keyed=True,
        initial_state_bytes_per_group=8e6))
    graph.add_sink("sink", collect=True)
    graph.connect("src", "agg", Partitioning.HASH)
    graph.connect("agg", "sink", Partitioning.FORWARD)
    job = StreamJob(graph,
                    config=_config_with_backend(None,
                                                state_backend)).build()
    job.enable_telemetry()
    produced: Dict[str, int] = {}

    def gen():
        src = job.sources()[0]
        i = 0
        while job.sim.now < 16.0:
            # Ramp at t=4: 300/s → 1200/s saturates p=2 (service 2 ms)
            # and the utilisation policy must scale out.
            rate = 300.0 if job.sim.now < 4.0 else 1200.0
            key = f"k{i % 24}"
            src.offer(Record(key=key, event_time=job.sim.now, count=1))
            produced[key] = produced.get(key, 0) + 1
            if i % 20 == 0:
                src.offer(Watermark(timestamp=job.sim.now))
            i += 1
            yield job.sim.timeout(1.0 / rate)

    job.sim.spawn(gen(), name="chaos-driver")
    checkpoints = CheckpointCoordinator(job, interval=0.75)
    checkpoints.start()
    recovery = RecoveryManager(job, restart_seconds=0.5,
                               retain_checkpoints=100).install()
    controller = DRRSController(job)
    auto = AutoscaleController(
        job, controller, "agg",
        UtilizationThresholdPolicy(
            high=0.5, low=0.2, target=0.35, min_parallelism=2,
            max_parallelism=6, cooldown=6.0, hold_ticks=2,
            min_samples=3),
        interval=1.0, warmup=1.0)
    auto.start()
    injector = FaultInjector(job, recovery=recovery, seed=seed)
    # Phase trigger: fires at the first state transfer of the
    # controller-initiated subscale, whenever the policy decides.
    injector.add(CrashInstance("agg", 1, phase="state-transfer"))

    def expect(setup) -> List[str]:
        problems: List[str] = []
        if auto.rescales_completed < 1:
            problems.append("autoscaler never completed a rescale")
        if auto.rescales_failed:
            problems.append(
                f"{auto.rescales_failed} autoscaled rescale(s) failed "
                "(the retry should have completed them)")
        if not recovery.recoveries:
            problems.append("crash caused no recovery")
        problems += _expect_spans(job)
        log = auto.decision_log()
        if not any(entry["event"] == "defer" for entry in log):
            problems.append(
                "no decision was deferred while the crashed subscale "
                "was in flight")
        open_since = None
        for entry in log:
            if entry["event"] == "decide":
                if open_since is not None:
                    problems.append(
                        f"decision at t={entry['t']} issued while the "
                        f"rescale from t={open_since} was in flight")
                open_since = entry["t"]
            elif entry["event"] in ("complete", "failed"):
                open_since = None
        completed = [entry["target"] for entry in log
                     if entry["event"] == "complete"]
        if completed and len(job.instances("agg")) != completed[-1]:
            problems.append(
                f"agg has {len(job.instances('agg'))} instances, last "
                f"completed rescale targeted {completed[-1]}")
        return problems

    return ChaosSetup(job=job, injector=injector, keyed_ops=["agg"],
                      horizon=45.0, recovery=recovery,
                      oracle={"agg": produced}, expectations=[expect])


def _crash_during_transfer(
        seed: int, state_backend: Optional[str] = None) -> ChaosSetup:
    """Phase-triggered crash the instant the first key-group migration
    begins; recovery rolls the migration back, the retry completes it."""
    from ..core.drrs import DRRSController

    job, produced = _keyed_job(stop_at=14.0,
                               state_bytes_per_group=8e6,
                               state_backend=state_backend)
    job.enable_telemetry()
    checkpoints = CheckpointCoordinator(job, interval=1.0)
    checkpoints.start()
    recovery = RecoveryManager(job, restart_seconds=0.5).install()
    controller = DRRSController(job)
    holder = _rescale_at(job, controller, "agg", 6.0, 4)
    injector = FaultInjector(job, recovery=recovery, seed=seed)
    injector.add(CrashInstance("agg", 0, phase="state-transfer"))

    def expect(setup) -> List[str]:
        problems = _expect_rescaled(holder, job, "agg", 4)
        problems += _expect_spans(job)
        if not recovery.recoveries:
            problems.append("crash caused no recovery")
        return problems

    return ChaosSetup(job=job, injector=injector, keyed_ops=["agg"],
                      horizon=45.0, recovery=recovery,
                      oracle={"agg": produced}, expectations=[expect])


def _lossy_window_then_crash(
        seed: int, kind: str,
        state_backend: Optional[str] = None) -> ChaosSetup:
    """Drop or duplicate a window of records, then crash: recovery from
    a pre-window checkpoint plus replay restores exactly-once."""
    job, produced = _keyed_job(stop_at=12.0, state_backend=state_backend)
    checkpoints = CheckpointCoordinator(job, interval=1.0)
    checkpoints.start()
    recovery = RecoveryManager(job, restart_seconds=0.5).install()
    injector = FaultInjector(job, recovery=recovery, seed=seed)
    # Checkpoints cut inside the fault window would bake the damage in
    # (see module docstring); pause the coordinator around it.
    job.sim.call_at(4.9, checkpoints.stop)
    if kind == "drop":
        injector.add(DropRecords("src", "agg", duration=0.6,
                                 probability=0.7, at=5.0))
    else:
        injector.add(DuplicateRecords("src", "agg", duration=0.3,
                                      at=5.0))
    injector.add(CrashInstance("agg", 0, at=6.0))
    job.sim.call_at(8.0, checkpoints.start)

    def expect(setup) -> List[str]:
        problems: List[str] = []
        if not recovery.recoveries:
            problems.append("crash caused no recovery")
        return problems

    return ChaosSetup(job=job, injector=injector, keyed_ops=["agg"],
                      horizon=35.0, recovery=recovery,
                      oracle={"agg": produced}, expectations=[expect])


def _stall_and_rollback(
        seed: int, state_backend: Optional[str] = None) -> ChaosSetup:
    """Transfers stall mid-migration; a watchdog aborts the scale, the
    rollback restores the pre-subscale world and the retry finishes.
    No recovery at all — exactly-once must survive on rollback alone."""
    from ..core.drrs import DRRSController

    job, produced = _keyed_job(stop_at=14.0,
                               state_bytes_per_group=8e6,
                               state_backend=state_backend)
    job.enable_telemetry()
    controller = DRRSController(job)
    holder = _rescale_at(job, controller, "agg", 6.0, 4)
    injector = FaultInjector(job, seed=seed)
    injector.add(StallTransfers("agg", extra_seconds=6.0, duration=2.0,
                                phase="state-transfer"))
    job.sim.call_at(7.5, lambda: controller.abort_and_rollback(
        "stall watchdog", retry=True))

    def expect(setup) -> List[str]:
        problems = _expect_rescaled(holder, job, "agg", 4)
        problems += _expect_spans(job)
        return problems

    return ChaosSetup(job=job, injector=injector, keyed_ops=["agg"],
                      horizon=45.0, oracle={"agg": produced},
                      expectations=[expect])


def _delay_blip(seed: int,
                state_backend: Optional[str] = None) -> ChaosSetup:
    """Records re-ordered by a delay window: no loss, no duplication —
    exactly-once must hold with no recovery at all."""
    job, produced = _keyed_job(stop_at=10.0, state_backend=state_backend)
    injector = FaultInjector(job, seed=seed)
    injector.add(DelayRecords("src", "agg", duration=1.0, hold=0.8,
                              probability=0.5, at=4.0))
    return ChaosSetup(job=job, injector=injector, keyed_ops=["agg"],
                      horizon=20.0, oracle={"agg": produced})


def _double_fault(seed: int,
                  state_backend: Optional[str] = None) -> ChaosSetup:
    """A second crash strikes while the first restore is still running;
    the half-done restore is abandoned and recovery restarts cleanly."""
    job, produced = _keyed_job(stop_at=12.0, state_backend=state_backend)
    checkpoints = CheckpointCoordinator(job, interval=1.0)
    checkpoints.start()
    recovery = RecoveryManager(job, restart_seconds=1.5).install()
    injector = FaultInjector(job, recovery=recovery, seed=seed)
    injector.add(CrashInstance("agg", 0, at=6.0))
    injector.add(CrashInstance("agg", 1, at=6.8))

    def expect(setup) -> List[str]:
        problems: List[str] = []
        if len(recovery.recoveries) < 2:
            problems.append(
                f"expected a double recovery, saw "
                f"{len(recovery.recoveries)}")
        return problems

    return ChaosSetup(job=job, injector=injector, keyed_ops=["agg"],
                      horizon=35.0, recovery=recovery,
                      oracle={"agg": produced}, expectations=[expect])


def _crash_large_state(seed: int,
                       state_backend: Optional[str] = None) -> ChaosSetup:
    """Recovery-time tier: crash a job with *large* keyed state.

    Defaults to the changelog backend.  The expectation measures the
    checkpoint barrier-path cost and the recovery-restore duration from
    telemetry spans, and — when running under changelog — runs a dict
    twin of the same seed and asserts the two headline claims:

    * barrier-path (``checkpoint.sync``) cost is ~constant in state size
      (the dict twin's grows with the state; changelog's is the manifest),
    * recovery completes in ≤ 50 % of the dict backend's recovery time
      (local recovery: materialized base durable + local, only the delta
      tail is replayed).
    """
    backend = state_backend or "changelog"
    job, produced = _keyed_job(stop_at=12.0,
                               state_bytes_per_group=48e6,
                               state_backend=backend)
    job.enable_telemetry()
    checkpoints = CheckpointCoordinator(job, interval=1.0)
    checkpoints.start()
    recovery = RecoveryManager(job, restart_seconds=0.5).install()
    injector = FaultInjector(job, recovery=recovery, seed=seed)
    # The crash lands only after the first (anchoring, whole-state)
    # segment upload is durable — no checkpoint may complete before its
    # whole delta chain is, so an earlier crash would find nothing to
    # restore from under the changelog backend.
    injector.add(CrashInstance("agg", 0, at=10.0))

    def _measure(measured_job):
        tracer = measured_job.telemetry.tracer
        syncs = [span.duration for span in tracer.closed_spans(
            category="checkpoint", name="checkpoint.sync")]
        restores = [span.duration for span in tracer.closed_spans(
            category="recovery", name="recovery.restore")]
        return (max(syncs) if syncs else 0.0,
                max(restores) if restores else 0.0)

    def expect(setup) -> List[str]:
        problems: List[str] = []
        if not recovery.recoveries:
            problems.append("crash caused no recovery")
            return problems
        max_sync, restore_time = _measure(job)
        setup.measurements.update({
            "state_backend": backend,
            "max_checkpoint_sync_seconds": max_sync,
            "recovery_restore_seconds": restore_time,
        })
        if backend != "changelog":
            return problems
        # Dict twin, same seed: the baseline the claims are made against.
        twin = _crash_large_state(seed, state_backend="dict")
        twin.injector.arm()
        twin.job.run(until=twin.horizon)
        dict_sync, dict_restore = _measure(twin.job)
        setup.measurements.update({
            "dict_max_checkpoint_sync_seconds": dict_sync,
            "dict_recovery_restore_seconds": dict_restore,
        })
        # Barrier-path cost ~constant: the changelog manifest is tiny and
        # independent of the 48 MB/group state the dict twin serializes.
        if dict_sync > 0 and max_sync > 0.1 * dict_sync:
            problems.append(
                f"changelog barrier sync {max_sync:.6f}s is not ~constant "
                f"(dict twin paid {dict_sync:.6f}s)")
        if dict_restore <= 0:
            problems.append("dict twin recorded no recovery.restore span")
        elif restore_time > 0.5 * dict_restore:
            problems.append(
                f"changelog recovery {restore_time:.3f}s exceeds 50% of "
                f"the dict backend's {dict_restore:.3f}s")
        return problems

    return ChaosSetup(job=job, injector=injector, keyed_ops=["agg"],
                      horizon=40.0, recovery=recovery,
                      oracle={"agg": produced}, expectations=[expect])


def _checkpoint_upload_stall(
        seed: int, state_backend: Optional[str] = None) -> ChaosSetup:
    """Recovery-time tier: async uploads stall, then a crash lands.

    Defaults to the changelog backend.  A checkpoint whose delta-segment
    uploads are stalled must not complete — and a crash during the stall
    must recover from the *older* checkpoint whose chain is durable,
    never from the one with segments still in flight.  Under the dict
    backend the stall is a no-op (nothing uploads asynchronously) and the
    newest checkpoint is used; both runs must pass the invariants.
    """
    backend = state_backend or "changelog"
    job, produced = _keyed_job(stop_at=12.0,
                               state_bytes_per_group=8e6,
                               state_backend=backend)
    job.enable_telemetry()
    checkpoints = CheckpointCoordinator(job, interval=1.0)
    checkpoints.start()
    recovery = RecoveryManager(job, restart_seconds=0.5).install()
    injector = FaultInjector(job, recovery=recovery, seed=seed)
    injector.add(StallUploads("agg", extra_seconds=4.0, duration=2.5,
                              at=4.5))
    injector.add(CrashInstance("agg", 1, at=6.0))

    def expect(setup) -> List[str]:
        problems: List[str] = []
        if not recovery.recoveries:
            problems.append("crash caused no recovery")
            return problems
        when, cid = recovery.recoveries[0]
        triggered_before = [c for t, c in checkpoints.triggered
                            if t < when]
        completed_ids = {c for _t, c in checkpoints.completed}
        setup.measurements.update({
            "state_backend": backend,
            "restored_checkpoint": cid,
            "triggered_before_crash": len(triggered_before),
            "completed_total": len(completed_ids),
        })
        if backend == "changelog":
            newest_triggered = max(triggered_before, default=0)
            if cid >= newest_triggered:
                problems.append(
                    f"recovery used checkpoint #{cid} whose uploads were "
                    f"stalled (newest triggered before the crash was "
                    f"#{newest_triggered}) — delta-chain completeness "
                    "was not enforced")
        return problems

    return ChaosSetup(job=job, injector=injector, keyed_ops=["agg"],
                      horizon=35.0, recovery=recovery,
                      oracle={"agg": produced}, expectations=[expect])


CHAOS_SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.name: scenario for scenario in [
        ChaosScenario(
            "crash-mid-subscale", _crash_mid_subscale,
            "crash during a DRRS subscale; recover from a mid-scaling "
            "checkpoint and finish the rescale via retry (§IV-C "
            "acceptance)"),
        ChaosScenario(
            "autoscale-crash-mid-subscale", _autoscale_crash_mid_subscale,
            "crash during a subscale the closed-loop autoscaler "
            "initiated; the same done event survives abort → rollback "
            "→ retry and decisions defer, never overlap"),
        ChaosScenario(
            "crash-during-transfer", _crash_during_transfer,
            "phase-triggered crash at the first state transfer"),
        ChaosScenario(
            "drop-then-crash",
            lambda seed, state_backend=None: _lossy_window_then_crash(
                seed, "drop", state_backend=state_backend),
            "lose a window of records on the wire, then crash; replay "
            "repairs the loss"),
        ChaosScenario(
            "duplicate-then-crash",
            lambda seed, state_backend=None: _lossy_window_then_crash(
                seed, "duplicate", state_backend=state_backend),
            "deliver a window of records twice, then crash; rollback "
            "undoes the double count"),
        ChaosScenario(
            "stall-and-rollback", _stall_and_rollback,
            "stalled transfers abort the scale; rollback + retry with "
            "no recovery manager involved"),
        ChaosScenario(
            "delay-blip", _delay_blip,
            "re-order a window of records; exactly-once with no "
            "recovery"),
        ChaosScenario(
            "double-fault", _double_fault,
            "second crash lands mid-restore; recovery restarts from "
            "scratch"),
        ChaosScenario(
            "crash-large-state", _crash_large_state,
            "crash with large keyed state (changelog default): barrier "
            "sync must stay ~constant and recovery must finish in <=50% "
            "of the dict backend's time (measured against a same-seed "
            "dict twin)"),
        ChaosScenario(
            "checkpoint-upload-stall", _checkpoint_upload_stall,
            "async changelog uploads stall, then a crash: recovery must "
            "use the older checkpoint whose delta chain is durable, "
            "never the one with segments in flight"),
    ]
}


def chaos_scenario(name: str) -> ChaosScenario:
    try:
        return CHAOS_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(CHAOS_SCENARIOS))
        raise KeyError(f"unknown chaos scenario {name!r}; known: {known}")
