"""The diurnal-day scenario: a compressed day of Twitch traffic under
closed-loop autoscaling.

One run compresses a day into ``duration`` simulated seconds of the
synthetic Twitch workload: a quiet night, a morning ramp, a midday
flash crowd (a popular channel going live — the arrival rate spikes and
channel popularity rotates), an evening ramp to the daily peak, and a
wind-down.  The arrival-rate curve is piecewise linear
(:data:`DAY_POINTS`, multipliers on the base rate over normalized day
time) and drives :class:`~..workloads.twitch.TwitchWorkload` through its
``rate_profile`` hook; popularity shifts rotate the Zipf head at the
flash crowd and the evening peak.

The **policy comparison** (:func:`compare_policies`) runs the same
seeded day under

* ``static-peak`` — no controller, provisioned for the daily peak the
  whole day (the StreamShield strawman);
* ``reactive`` — :class:`~..autoscale.UtilizationThresholdPolicy`;
* ``predictive`` — :class:`~..autoscale.PredictivePolicy`;
* optionally ``queue-depth``,

and reports, per policy: **SLO attainment** (fraction of
``slo_window``-second windows whose windowed p99 latency meets the SLO),
violations inside the declared **ramp windows** (where reactive policies
structurally lag), and **instance-seconds** consumed by the scaling
operator (∫ parallelism dt).  The acceptance criteria from ROADMAP item
1 are evaluated into ``criteria``: reactive holds the SLO at ≥ 30%
instance-second savings over static peak, and predictive strictly
reduces ramp-window violations versus reactive.

Every run is a pure function of (scale, seed): the report dict is
byte-identical across repeats, which the CI smoke job asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..autoscale import (AutoscaleController, PredictivePolicy,
                         QueueDepthPolicy, ScalingSignals,
                         UtilizationThresholdPolicy)
from ..core.drrs import DRRSController
from ..workloads.twitch import TwitchConfig, TwitchWorkload

__all__ = ["DiurnalConfig", "DAY_POINTS", "RAMP_WINDOWS", "day_profile",
           "run_diurnal", "compare_policies", "DIURNAL_POLICIES"]

#: Piecewise-linear arrival-rate multipliers over normalized day time:
#: night plateau, morning ramp, midday flash crowd, evening peak,
#: wind-down.
DAY_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.00, 0.35), (0.20, 0.35),                # night
    (0.32, 1.00), (0.40, 0.95),                # morning ramp → midday
    (0.44, 1.80), (0.48, 1.80), (0.50, 0.95),  # flash crowd (steep rise
                                               # with a short leading edge)
    (0.58, 1.00),                              # afternoon
    (0.70, 1.55), (0.78, 1.55),                # evening ramp → peak
    (0.88, 0.45), (1.00, 0.40),                # wind-down
)

#: Normalized windows where the load is ramping up — where reactive
#: policies structurally trail the curve and predictive ones should win.
RAMP_WINDOWS: Tuple[Tuple[float, float], ...] = (
    (0.20, 0.35),   # morning ramp (plus settle margin)
    (0.40, 0.52),   # flash crowd
    (0.58, 0.73),   # evening ramp
)

DIURNAL_POLICIES = ("static-peak", "reactive", "predictive",
                    "queue-depth")


def day_profile(points: Tuple[Tuple[float, float], ...] = DAY_POINTS,
                duration: float = 300.0) -> Callable[[float], float]:
    """The piecewise-linear day curve as a ``time -> multiplier`` callable."""
    if len(points) < 2:
        raise ValueError("need at least two profile points")

    def profile(t: float) -> float:
        frac = min(max(t / duration, 0.0), 1.0)
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if frac <= x1:
                if x1 == x0:
                    return y1
                return y0 + (y1 - y0) * (frac - x0) / (x1 - x0)
        return points[-1][1]

    return profile


@dataclass
class DiurnalConfig:
    """One compressed-day run.  ``scale`` presets pick the timings."""

    scale: str = "smoke"        # smoke | quick | paper
    seed: int = 7
    #: Windowed-p99 SLO in seconds (windowed p99 of end-to-end marker
    #: latency, which includes admission-queue wait and the hot-instance
    #: queue under Zipf skew — hence seconds, not milliseconds).
    slo: float = 1.5
    #: SLO evaluation window (seconds).
    slo_window: float = 5.0
    #: The SLO is "held" when at least this fraction of windows meet the
    #: windowed p99 bound (the StreamShield-style attainment target).
    attainment_target: float = 0.90
    #: Base arrival rate (multiplied by the day curve).
    base_rate: float = 4_000.0
    #: Target utilisation used to size static-peak provisioning.
    peak_sizing_target: float = 0.70
    #: Hot-instance-to-mean busy ratio the sizing must absorb: under the
    #: workload's Zipf(0.7) key skew the hottest instance carries ~1.4x
    #: the mean load, and it — not the mean — bounds tail latency.
    skew_headroom: float = 1.45
    #: Batch entities per simulated record for this scenario: finer than
    #: the default 100 so one queued entity is a ~37 ms service lump, not
    #: 150 ms — the windowed p99 then reflects load, not quantisation.
    batch_size: int = 25
    #: Skip this many initial seconds when scoring SLO windows (fill
    #: transient of the sliding windows, identical for every policy).
    measure_start: float = 15.0
    day_points: Tuple[Tuple[float, float], ...] = DAY_POINTS
    ramp_windows: Tuple[Tuple[float, float], ...] = RAMP_WINDOWS
    #: Filled in by ``__post_init__`` from ``scale`` unless overridden.
    duration: Optional[float] = None
    control_interval: Optional[float] = None
    extra: Dict = field(default_factory=dict)

    _SCALES = {
        "smoke": {"duration": 180.0, "control_interval": 2.0},
        "quick": {"duration": 420.0, "control_interval": 3.0},
        "paper": {"duration": 1200.0, "control_interval": 5.0},
    }

    def __post_init__(self):
        if self.scale not in self._SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; "
                f"known: {', '.join(sorted(self._SCALES))}")
        preset = self._SCALES[self.scale]
        if self.duration is None:
            self.duration = preset["duration"]
        if self.control_interval is None:
            self.control_interval = preset["control_interval"]

    # -- derived sizing -------------------------------------------------------

    @property
    def peak_multiplier(self) -> float:
        return max(m for _f, m in self.day_points)

    def _sized_for(self, rate: float, workload_config: TwitchConfig) -> int:
        """Instances so the *hottest* one (skew headroom) sits at the
        sizing target for ``rate`` physical records/s."""
        cfg = workload_config
        per_record = cfg.filter_pass * cfg.loyalty_service
        return max(2, math.ceil(
            rate * per_record * self.skew_headroom
            / self.peak_sizing_target))

    def peak_parallelism(self, workload_config: TwitchConfig) -> int:
        """Static provisioning for the daily peak at the sizing target."""
        return self._sized_for(self.base_rate * self.peak_multiplier,
                               workload_config)

    def base_parallelism(self, workload_config: TwitchConfig) -> int:
        """Launch parallelism for autoscaled runs: sized for the night."""
        return self._sized_for(self.base_rate * self.day_points[0][1],
                               workload_config)

    def popularity_shifts(self) -> Tuple[Tuple[float, int], ...]:
        """Rotate the Zipf head at the flash crowd and the evening peak."""
        d = self.duration
        return ((0.44 * d, 997), (0.70 * d, 1993))


def _twitch_config(config: DiurnalConfig,
                   parallelism: int) -> TwitchConfig:
    return TwitchConfig(
        rate=config.base_rate,
        seed=config.seed,
        duration=config.duration,
        batch_size=config.batch_size,
        operator_parallelism=parallelism,
        rate_profile=day_profile(config.day_points, config.duration),
        popularity_shifts=config.popularity_shifts(),
    )


def _make_policy(name: str, config: DiurnalConfig, low: int, high: int):
    interval = config.control_interval
    shared = dict(min_parallelism=low, max_parallelism=high,
                  cooldown=4.0 * interval, cooldown_in=8.0 * interval,
                  hold_ticks=2)
    # Control on *mean* busy with the target derated by the skew
    # headroom — exactly the formula static peak is sized with, so the
    # autoscaled fleet converges to the same per-rate capacity and the
    # comparison isolates *when* capacity exists, not how much.  (Mean
    # control also converges where max control would not: one hot
    # key-group keeps busy_max high at any parallelism.)
    target = config.peak_sizing_target / config.skew_headroom
    thresholds = dict(target=target, high=min(0.95, 1.3 * target),
                      low=0.62 * target, metric="mean")
    if name == "reactive":
        return UtilizationThresholdPolicy(**thresholds, **shared)
    if name == "queue-depth":
        return QueueDepthPolicy(high_depth=24.0, low_depth=2.0, **shared)
    if name == "predictive":
        return PredictivePolicy(
            # Lead ≈ one ramp length: the pre-scale then lands (and its
            # migrations finish) before the plateau, in one decision.
            lead_time=max(10.0, 0.12 * config.duration),
            fit_samples=5, **thresholds, **shared)
    raise ValueError(f"unknown diurnal policy {name!r}")


def _windowed_slo(latency_series: List[Tuple[float, float]],
                  config: DiurnalConfig) -> Dict:
    """Score 5-second windows: p99 ≤ SLO, attributed to ramp windows."""
    duration = config.duration
    window = config.slo_window
    ramps = [(f0 * duration, f1 * duration)
             for f0, f1 in config.ramp_windows]
    windows = []
    start = config.measure_start
    while start + window <= duration + 1e-9:
        samples = sorted(v for t, v in latency_series
                         if start <= t < start + window)
        if samples:
            p99 = samples[min(len(samples) - 1,
                              int(0.99 * len(samples)))]
            in_ramp = any(r0 <= start < r1 for r0, r1 in ramps)
            windows.append((start, p99, in_ramp))
        start += window
    violations = [(t, p99, in_ramp) for t, p99, in_ramp in windows
                  if p99 > config.slo]
    ramp_windows = sum(1 for _t, _p, in_ramp in windows if in_ramp)
    ramp_violations = sum(1 for _t, _p, in_ramp in violations if in_ramp)
    return {
        "windows": len(windows),
        "violations": len(violations),
        "attainment": (round(1.0 - len(violations) / len(windows), 6)
                       if windows else 1.0),
        "ramp_windows": ramp_windows,
        "ramp_violations": ramp_violations,
        "violation_times": [round(t, 3) for t, _p, _r in violations],
        "worst_window_p99": (round(max(p for _t, p, _r in windows), 6)
                             if windows else 0.0),
    }


def run_diurnal(policy: str, config: Optional[DiurnalConfig] = None
                ) -> Dict:
    """One compressed day under one provisioning policy; JSON-safe dict."""
    config = config or DiurnalConfig()
    if policy not in DIURNAL_POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; "
            f"known: {', '.join(DIURNAL_POLICIES)}")
    probe = _twitch_config(config, 1)
    peak = config.peak_parallelism(probe)
    base = config.base_parallelism(probe)
    static = policy == "static-peak"
    launch = peak if static else base
    workload = TwitchWorkload(_twitch_config(config, launch))
    job = workload.build()
    job.enable_telemetry()

    auto = None
    if not static:
        drrs = DRRSController(job)
        auto = AutoscaleController(
            job, drrs, workload.scaling_operator,
            # Cap at static peak + margin: an autoscaler allowed to buy a
            # bigger fleet than peak provisioning is not a fair saving.
            _make_policy(policy, config, low=2, high=peak + 2),
            signals=ScalingSignals(job, workload.scaling_operator),
            interval=config.control_interval,
            warmup=2.0 * config.control_interval)
        auto.start()

    job.run(until=config.duration)

    slo = _windowed_slo(job.metrics.latency_series(), config)
    overall = job.metrics.latency_stats(config.measure_start,
                                        config.duration)
    result = {
        "policy": policy,
        "scale": config.scale,
        "seed": config.seed,
        "slo": config.slo,
        "duration": config.duration,
        "peak_parallelism": peak,
        "launch_parallelism": launch,
        "p99_latency": round(overall.get("p99", 0.0), 6),
        "mean_latency": round(overall.get("mean", 0.0), 6),
        "source_records": job.metrics.total_source_output(),
        "sink_records": job.metrics.total_sink_input(),
        **slo,
    }
    if static:
        result["instance_seconds"] = round(peak * config.duration, 3)
        result["rescales"] = 0
        result["decisions"] = []
    else:
        summary = auto.summary()
        result["instance_seconds"] = summary["instance_seconds"]
        result["rescales"] = summary["rescales_completed"]
        result["rescales_failed"] = summary["rescales_failed"]
        result["decisions_deferred"] = summary["decisions_deferred"]
        result["final_parallelism"] = summary["final_parallelism"]
        result["decisions"] = summary["decisions"]
    return result


def compare_policies(config: Optional[DiurnalConfig] = None,
                     policies: Tuple[str, ...] = ("static-peak",
                                                  "reactive",
                                                  "predictive")) -> Dict:
    """Run the same seeded day under each policy; evaluate the criteria."""
    config = config or DiurnalConfig()
    runs = {name: run_diurnal(name, config) for name in policies}
    static_cost = runs.get("static-peak", {}).get("instance_seconds")
    savings = {}
    for name, run in runs.items():
        if name == "static-peak" or not static_cost:
            continue
        savings[name] = round(
            1.0 - run["instance_seconds"] / static_cost, 4)
    criteria: Dict[str, object] = {}
    reactive = runs.get("reactive")
    predictive = runs.get("predictive")
    if reactive is not None and static_cost:
        criteria["reactive_holds_slo"] = (
            reactive["attainment"] >= config.attainment_target)
        criteria["reactive_saves_30pct"] = savings.get("reactive",
                                                       0.0) >= 0.30
    if reactive is not None and predictive is not None:
        criteria["predictive_beats_reactive_on_ramps"] = (
            predictive["ramp_violations"] < reactive["ramp_violations"])
    criteria["passed"] = all(v for v in criteria.values())
    return {
        "scenario": "diurnal-day",
        "scale": config.scale,
        "seed": config.seed,
        "slo": config.slo,
        "attainment_target": config.attainment_target,
        "duration": config.duration,
        "policies": runs,
        "instance_seconds_savings": savings,
        "criteria": criteria,
    }
