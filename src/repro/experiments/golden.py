"""Golden-trace capture: a semantic fingerprint of one simulated run.

The perf work on the DES kernel and the record plane (kernel fast paths,
drainer batching, routing caches) must never change *simulated* behaviour:
same timestamps, same order on timestamp ties, same metrics.  This module
captures everything observable about a run — latency samples with exact
float values, source/sink event sequences, per-instance counters and the
full :class:`~repro.scaling.base.ScalingMetrics` content — into a
JSON-serialisable document.  A golden file recorded at the pre-optimization
commit is committed under ``tests/golden/``; the regression test re-captures
and compares for exact equality.

Kernel event *counts* are deliberately excluded from the semantic digest:
optimizations may remove internal bookkeeping events (they are reported
under ``info`` instead), but they may not move or reorder anything
observable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from ..engine.runtime import StreamJob
from .harness import ExperimentConfig, run_experiment
from .scenarios import QUICK, make_workload

__all__ = ["capture_q7_trace", "scaling_metrics_digest"]


def _digest(obj: Any) -> str:
    """SHA-256 over the repr of a structure of exact floats/ints/strs."""
    return hashlib.sha256(repr(obj).encode("utf-8")).hexdigest()


def scaling_metrics_digest(metrics) -> Optional[Dict[str, Any]]:
    """Exact, JSON-safe dump of one ScalingMetrics (None passes through)."""
    if metrics is None:
        return None
    return {
        "started_at": metrics.started_at,
        "finished_at": metrics.finished_at,
        "duration": metrics.duration,
        "injections": {str(k): v
                       for k, v in sorted(metrics.injections.items(),
                                          key=lambda kv: str(kv[0]))},
        "first_migration": {str(k): v
                            for k, v in sorted(metrics.first_migration.items(),
                                               key=lambda kv: str(kv[0]))},
        "migration_started": {str(k): v for k, v
                              in sorted(metrics.migration_started.items())},
        "migration_completed": {str(k): v for k, v
                                in sorted(metrics.migration_completed.items())},
        "suspensions": [[name, start, end]
                        for name, start, end in metrics.suspensions],
        "remigrations": metrics.remigrations,
        "records_rerouted": metrics.records_rerouted,
        "cumulative_propagation_delay":
            metrics.cumulative_propagation_delay(),
        "average_dependency_overhead":
            metrics.average_dependency_overhead(),
        "total_suspension": metrics.total_suspension(),
    }


def _operator_digest(job: StreamJob) -> Dict[str, Dict[str, Any]]:
    rows = {}
    for instance in job.all_instances():
        rows[instance.name] = {
            "records_processed": instance.records_processed,
            "busy_seconds": instance.busy_seconds,
            "suspended_seconds": instance.suspended_seconds,
            "watermark": (None if instance.current_watermark == float("-inf")
                          else instance.current_watermark),
        }
    return dict(sorted(rows.items()))


def capture_q7_trace(system: Optional[str] = "drrs",
                     warmup: float = 10.0,
                     post: float = 25.0,
                     new_parallelism: int = 12,
                     telemetry: bool = False,
                     record_plane: Optional[str] = None,
                     scheduler: Optional[str] = None) -> Dict[str, Any]:
    """Run a NEXMark Q7 scenario (optionally under a DRRS rescale) and
    return its semantic trace document.

    ``record_plane`` selects "batched"/"columnar"/"single" and
    ``scheduler`` selects "heap"/"calendar" (None = engine default); the
    semantic subtree must be identical for every combination.
    """
    from .figures import controller_factory

    workload = make_workload("q7", QUICK)
    config = ExperimentConfig(
        workload=workload,
        controller_factory=(controller_factory(system) if system else None),
        new_parallelism=new_parallelism,
        warmup=warmup,
        post_duration=post,
        record_plane=record_plane,
        scheduler=scheduler,
        label=f"golden-q7/{system or 'no-scale'}",
        telemetry=telemetry)
    result = run_experiment(config)
    job = result.job
    metrics = job.metrics
    latency = metrics.latency_samples
    doc = {
        "schema": "repro-golden/1",
        "scenario": {"workload": "q7", "system": system or "no-scale",
                     "warmup": warmup, "post": post,
                     "new_parallelism": new_parallelism},
        "semantic": {
            "source_records": result.source_records,
            "sink_records": result.sink_records,
            "end_time": job.sim.now,
            "latency_count": len(latency),
            "latency_head": [list(sample) for sample in latency[:20]],
            "latency_digest": _digest(latency),
            "source_events_digest": _digest(metrics._source_events),
            "sink_events_digest": _digest(metrics._sink_events),
            "operators": _operator_digest(job),
            "scaling": scaling_metrics_digest(result.scaling_metrics),
            "scaling_period": result.scaling_period,
        },
        # Diagnostics only — excluded from golden equality (perf work may
        # legitimately remove internal kernel bookkeeping events).
        "info": {
            "kernel_events": job.sim.events_processed,
            "record_plane": job.config.record_plane,
            "max_batch_size": job.config.max_batch_size,
            "scheduler": job.sim.scheduler,
        },
    }
    return doc


def main(argv=None) -> int:  # pragma: no cover - capture utility
    import argparse

    parser = argparse.ArgumentParser(
        description="capture a golden semantic trace")
    parser.add_argument("--system", default="drrs")
    parser.add_argument("--output", required=True)
    args = parser.parse_args(argv)
    system = None if args.system == "no-scale" else args.system
    doc = capture_q7_trace(system=system)
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"[golden saved to {args.output}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
