"""Experiment harness and per-figure runners."""

from .harness import (ExperimentConfig, ExperimentResult,
                      detect_scaling_period, run_experiment)
from .figures import (controller_factory, run_fig02_unbound_probe,
                      run_fig10_latency, run_fig11_throughput,
                      run_fig12_propagation_dependency,
                      run_fig13_suspension, run_fig14_ablation,
                      run_fig15_sensitivity, run_main_comparison)
from .report import (format_fig02, format_fig10, format_fig12,
                     format_fig13, format_fig14, format_fig15,
                     format_table)
from .scenarios import PAPER, QUICK, Scenario, make_workload
from .timeline import ascii_timeline, export_result, series_to_csv

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "detect_scaling_period",
    "run_experiment",
    "controller_factory",
    "run_fig02_unbound_probe",
    "run_fig10_latency",
    "run_fig11_throughput",
    "run_fig12_propagation_dependency",
    "run_fig13_suspension",
    "run_fig14_ablation",
    "run_fig15_sensitivity",
    "run_main_comparison",
    "format_fig02",
    "format_fig10",
    "format_fig12",
    "format_fig13",
    "format_fig14",
    "format_fig15",
    "format_table",
    "PAPER",
    "QUICK",
    "Scenario",
    "make_workload",
    "ascii_timeline",
    "export_result",
    "series_to_csv",
]
