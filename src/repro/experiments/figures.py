"""One runner per evaluation figure (Figs. 2, 10-15 of the paper).

Each ``run_figXX`` executes the experiments behind that figure and returns
the same rows/series the paper plots.  The main-comparison runs (Figs.
10-13 share the same nine runs) are memoised per process so the benchmark
suite does not repeat them.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.drrs import DRRSController, make_variant
from ..engine.cluster import swarm_cluster
from ..engine.runtime import StreamJob
from ..scaling.megaphone import MegaphoneController
from ..scaling.meces import MecesController
from ..scaling.otfs import OTFSController
from ..scaling.stop_restart import StopRestartController
from ..scaling.unbound import UnboundController
from .harness import ExperimentConfig, ExperimentResult, run_experiment
from .scenarios import (QUICK, SENSITIVITY_GRID_QUICK, Scenario,
                        make_workload)

__all__ = [
    "controller_factory",
    "run_fig02_unbound_probe",
    "run_main_comparison",
    "run_fig10_latency",
    "run_fig11_throughput",
    "run_fig12_propagation_dependency",
    "run_fig13_suspension",
    "run_fig14_ablation",
    "run_fig15_sensitivity",
]

MAIN_WORKLOADS = ("q7", "q8", "twitch")
MAIN_SYSTEMS = ("drrs", "megaphone", "meces")


def controller_factory(name: str, **kwargs) -> Callable[[StreamJob], object]:
    """Factory for every controller the evaluation compares."""
    builders = {
        "drrs": lambda job: DRRSController(job, **kwargs),
        "megaphone": lambda job: MegaphoneController(job, **kwargs),
        "meces": lambda job: MecesController(job, **kwargs),
        "otfs": lambda job: OTFSController(job, **kwargs),
        "otfs-all-at-once": lambda job: OTFSController(
            job, migration="all_at_once", **kwargs),
        "unbound": lambda job: UnboundController(job, **kwargs),
        "stop-restart": lambda job: StopRestartController(job, **kwargs),
        "dr": lambda job: make_variant(job, "dr", **kwargs),
        "schedule": lambda job: make_variant(job, "schedule", **kwargs),
        "subscale": lambda job: make_variant(job, "subscale", **kwargs),
    }
    if name not in builders:
        raise ValueError(f"unknown controller: {name!r}")
    return builders[name]


def _run_one(kind: str, system: Optional[str],
             scenario: Scenario, new_parallelism: Optional[int] = None,
             telemetry: bool = False,
             **workload_overrides) -> ExperimentResult:
    workload = make_workload(kind, scenario, **workload_overrides)
    factory = controller_factory(system) if system else None
    config = ExperimentConfig(
        workload=workload,
        controller_factory=factory,
        new_parallelism=(new_parallelism if new_parallelism is not None
                         else scenario.new_parallelism),
        warmup=scenario.warmup,
        post_duration=scenario.post_duration,
        stabilize_hold=scenario.stabilize_hold,
        label=f"{kind}/{system or 'no-scale'}",
        telemetry=telemetry)
    return run_experiment(config)


# ---------------------------------------------------------------------------
# Fig. 2 — Unbound vs OTFS vs No Scale (§II-B)
# ---------------------------------------------------------------------------

def run_fig02_unbound_probe(scenario: Scenario = QUICK
                            ) -> Dict[str, object]:
    """Latency over time for Unbound, generalized OTFS (fluid) and No Scale
    on the Twitch workload, plus the avg/peak ratios the paper reports
    (OTFS 3.47×/4.8× vs Unbound 1.25×/1.14× relative to No Scale).

    Per §II-B the probe runs at a *fixed input rate* the pre-scale
    deployment handles comfortably, so the scaling operation is pure
    disruption (the added capacity brings no benefit) and ratios are taken
    over the disturbance window after the scaling request.
    """
    overrides = {"loyalty_service": 1.15e-3}  # ~52 % mean pre-scale utilisation
    results = {
        "no-scale": _run_one("twitch", None, scenario, **overrides),
        "otfs": _run_one("twitch", "otfs", scenario, **overrides),
        "unbound": _run_one("twitch", "unbound", scenario, **overrides),
    }
    base = results["no-scale"]
    ratios = {}
    for name in ("otfs", "unbound"):
        result = results[name]
        # Ratios are taken over each system's own scaling disturbance
        # window (its scaling period, floored at 10 s); after that window
        # the extra capacity would mask the disruption being measured.
        window = max(result.scaling_period or 0.0, 10.0)
        window = min(window, result.end_at - result.scale_at)
        during = result.job.metrics.latency_stats(
            start=result.scale_at, end=result.scale_at + window)
        base_stats = base.job.metrics.latency_stats(
            start=base.scale_at, end=base.scale_at + window)
        ratios[name] = {
            "avg_ratio": (during["mean"] / base_stats["mean"]
                          if base_stats["mean"] else math.inf),
            "peak_ratio": (during["peak"] / base_stats["peak"]
                           if base_stats["peak"] else math.inf),
        }
    return {"results": results, "ratios": ratios}


# ---------------------------------------------------------------------------
# Figs. 10-13 — main comparison (shared runs, memoised)
# ---------------------------------------------------------------------------

_MAIN_CACHE: Dict[Tuple, Dict[str, Dict[str, ExperimentResult]]] = {}


def run_main_comparison(scenario: Scenario = QUICK,
                        workloads: Sequence[str] = MAIN_WORKLOADS,
                        systems: Sequence[str] = MAIN_SYSTEMS
                        ) -> Dict[str, Dict[str, ExperimentResult]]:
    """The nine §V-B runs: every workload × every system."""
    key = (scenario.name, tuple(workloads), tuple(systems))
    if key in _MAIN_CACHE:
        return _MAIN_CACHE[key]
    results: Dict[str, Dict[str, ExperimentResult]] = {}
    for kind in workloads:
        results[kind] = {}
        for system in systems:
            results[kind][system] = _run_one(kind, system, scenario)
    _MAIN_CACHE[key] = results
    return results


def _reduction(drrs_value: float, other_value: float) -> float:
    """Percent reduction of DRRS relative to a baseline value."""
    if other_value <= 0:
        return 0.0
    return 100.0 * (other_value - drrs_value) / other_value


def run_fig10_latency(scenario: Scenario = QUICK,
                      workloads: Sequence[str] = MAIN_WORKLOADS,
                      systems: Sequence[str] = MAIN_SYSTEMS
                      ) -> Dict[str, object]:
    """End-to-end latency during scaling + the headline reductions."""
    results = run_main_comparison(scenario, workloads, systems)
    rows = []
    reductions = {}
    for kind in workloads:
        for system in systems:
            r = results[kind][system]
            rows.append({
                "workload": kind,
                "system": system,
                "peak_latency": r.peak_latency,
                "mean_latency": r.mean_latency,
                "pre_mean_latency": r.pre_latency.get("mean", 0.0),
                "scaling_period": r.scaling_period,
            })
        if "drrs" in systems:
            drrs = results[kind]["drrs"]
            reductions[kind] = {}
            for other in systems:
                if other == "drrs":
                    continue
                base = results[kind][other]
                reductions[kind][other] = {
                    "peak_reduction_pct": _reduction(
                        drrs.peak_latency, base.peak_latency),
                    "mean_reduction_pct": _reduction(
                        drrs.mean_latency, base.mean_latency),
                    "period_reduction_pct": _reduction(
                        drrs.scaling_period or 0.0,
                        base.scaling_period or 0.0),
                }
    return {"results": results, "rows": rows, "reductions": reductions}


def run_fig11_throughput(scenario: Scenario = QUICK,
                         workloads: Sequence[str] = MAIN_WORKLOADS,
                         systems: Sequence[str] = MAIN_SYSTEMS
                         ) -> Dict[str, object]:
    """Throughput (records/s) over time for the same nine runs."""
    results = run_main_comparison(scenario, workloads, systems)
    series = {}
    recovery = []
    for kind in workloads:
        series[kind] = {}
        for system in systems:
            r = results[kind][system]
            series[kind][system] = r.throughput_series
            post = [v for t, v in r.throughput_series if t >= r.scale_at]
            pre = [v for t, v in r.throughput_series
                   if r.scale_at - 10 <= t < r.scale_at]
            pre_mean = sum(pre) / len(pre) if pre else 0.0
            recovery.append({
                "workload": kind,
                "system": system,
                "pre_throughput": pre_mean,
                "min_during": min(post) if post else 0.0,
                "max_during": max(post) if post else 0.0,
            })
    return {"results": results, "series": series, "recovery": recovery}


def run_fig12_propagation_dependency(
        scenario: Scenario = QUICK,
        workloads: Sequence[str] = MAIN_WORKLOADS,
        systems: Sequence[str] = MAIN_SYSTEMS) -> Dict[str, object]:
    """Cumulative propagation delay and average dependency overhead."""
    results = run_main_comparison(scenario, workloads, systems)
    rows = []
    for kind in workloads:
        for system in systems:
            m = results[kind][system].scaling_metrics
            rows.append({
                "workload": kind,
                "system": system,
                "cumulative_propagation_delay":
                    m.cumulative_propagation_delay(),
                "avg_dependency_overhead":
                    m.average_dependency_overhead(),
            })
    return {"results": results, "rows": rows}


def run_fig13_suspension(scenario: Scenario = QUICK,
                         workloads: Sequence[str] = MAIN_WORKLOADS,
                         systems: Sequence[str] = MAIN_SYSTEMS
                         ) -> Dict[str, object]:
    """Cumulative suspension time (total + time series)."""
    results = run_main_comparison(scenario, workloads, systems)
    rows = []
    series = {}
    for kind in workloads:
        series[kind] = {}
        for system in systems:
            m = results[kind][system].scaling_metrics
            rows.append({
                "workload": kind,
                "system": system,
                "total_suspension": m.total_suspension(),
                "remigrations": m.remigrations,
            })
            series[kind][system] = m.suspension_series()
    return {"results": results, "rows": rows, "series": series}


# ---------------------------------------------------------------------------
# Fig. 14 — design-rationale isolation test (§V-C)
# ---------------------------------------------------------------------------

def run_fig14_ablation(scenario: Scenario = QUICK,
                       variants: Sequence[str] = ("drrs", "dr", "schedule",
                                                  "subscale")
                       ) -> Dict[str, object]:
    """Twitch workload, full DRRS vs each mechanism in isolation."""
    results = {}
    for variant in variants:
        results[variant] = _run_one("twitch", variant, scenario)
    rows = []
    full = results.get("drrs")
    for variant in variants:
        r = results[variant]
        row = {
            "variant": variant,
            "peak_latency": r.peak_latency,
            "mean_latency": r.mean_latency,
            "scaling_period": r.scaling_period,
        }
        if full is not None and variant != "drrs":
            row["peak_increase_pct"] = (
                100.0 * (r.peak_latency - full.peak_latency)
                / full.peak_latency if full.peak_latency else 0.0)
            row["mean_increase_pct"] = (
                100.0 * (r.mean_latency - full.mean_latency)
                / full.mean_latency if full.mean_latency else 0.0)
        rows.append(row)
    return {"results": results, "rows": rows}


# ---------------------------------------------------------------------------
# Fig. 15 — sensitivity analysis on the Swarm cluster (§V-D)
# ---------------------------------------------------------------------------

def run_fig15_sensitivity(scenario: Scenario = QUICK,
                          grid: Optional[Dict[str, List[float]]] = None,
                          systems: Sequence[str] = MAIN_SYSTEMS
                          ) -> Dict[str, object]:
    """Throughput deviation over ⟨input rate, state size, skewness⟩.

    Deviation (%) = shortfall of measured source throughput vs. the offered
    rate over the measurement window, the paper's Fig. 15 color value.
    """
    grid = grid or SENSITIVITY_GRID_QUICK
    rows = []
    for skew in grid["skews"]:
        for rate in grid["rates"]:
            for state_bytes in grid["state_bytes"]:
                for system in systems:
                    rows.append(_sensitivity_cell(
                        scenario, system, rate, state_bytes, skew))
    return {"rows": rows, "grid": grid}


def _sensitivity_cell(scenario: Scenario, system: str, rate: float,
                      state_bytes: float, skew: float) -> Dict[str, float]:
    workload = make_workload(
        "custom", scenario,
        rate=rate, skew=skew,
        target_state_bytes=state_bytes * scenario.state_scale)
    config = ExperimentConfig(
        workload=workload,
        controller_factory=controller_factory(system),
        new_parallelism=scenario.sens_new_parallelism,
        warmup=max(10.0, scenario.warmup / 3),
        post_duration=scenario.sensitivity_window,
        stabilize_hold=scenario.stabilize_hold,
        cluster=swarm_cluster(),
        label=f"sens/{system}")
    result = run_experiment(config)
    window = result.end_at - result.scale_at
    expected = rate * window
    actual = result.job.metrics.total_source_output(
        start=result.scale_at, end=result.end_at)
    deviation = max(0.0, 100.0 * (expected - actual) / expected)
    return {
        "system": system,
        "rate": rate,
        "state_bytes": state_bytes,
        "skew": skew,
        "throughput_deviation_pct": deviation,
        "measured_rate": actual / window if window else 0.0,
    }
