"""Timeline rendering and raw-data export for experiment results.

Plot-free output helpers: ASCII strips for terminals (used by the examples)
and CSV/JSON export so the series behind every figure can be re-plotted
with any external tool.
"""

from __future__ import annotations

import csv
import json
import os
from typing import List, Optional, Sequence, Tuple

from .harness import ExperimentResult

__all__ = ["ascii_timeline", "series_to_csv", "export_result"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def ascii_timeline(series: Sequence[Tuple[float, float]],
                   width: int = 60,
                   start: float = 0.0,
                   end: Optional[float] = None,
                   aggregate: str = "max",
                   mark_at: Optional[float] = None) -> str:
    """Render a time series as a unicode block strip.

    ``aggregate`` ∈ {"max", "mean"} controls per-bucket reduction;
    ``mark_at`` draws a ``|`` at that time (e.g. the scaling request).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if aggregate not in ("max", "mean"):
        raise ValueError(f"unknown aggregate: {aggregate!r}")
    if not series:
        return "(no data)"
    if end is None:
        end = max(t for t, _v in series)
    if end <= start:
        return "(empty window)"
    bucket_width = (end - start) / width
    buckets: List[List[float]] = [[] for _ in range(width)]
    for t, v in series:
        if start <= t < end:
            index = min(int((t - start) / bucket_width), width - 1)
            buckets[index].append(v)
    values = []
    for bucket in buckets:
        if not bucket:
            values.append(0.0)
        elif aggregate == "max":
            values.append(max(bucket))
        else:
            values.append(sum(bucket) / len(bucket))
    top = max(values) or 1.0
    chars = [
        _BLOCKS[min(int(v / top * (len(_BLOCKS) - 1)), len(_BLOCKS) - 1)]
        for v in values]
    if mark_at is not None and start <= mark_at < end:
        chars[min(int((mark_at - start) / bucket_width), width - 1)] = "|"
    return "".join(chars)


def series_to_csv(series: Sequence[Tuple[float, float]], path: str,
                  header: Tuple[str, str] = ("time_s", "value")) -> None:
    """Write one (time, value) series as a two-column CSV."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        for t, v in series:
            writer.writerow([f"{t:.6f}", f"{v:.9f}"])


def export_result(result: ExperimentResult, directory: str) -> List[str]:
    """Dump one experiment's series and summary for external plotting.

    Writes ``latency.csv``, ``throughput.csv``, ``suspension.csv`` (when a
    scaling operation ran) and ``summary.json``; returns the paths.
    """
    os.makedirs(directory, exist_ok=True)
    written = []

    path = os.path.join(directory, "latency.csv")
    series_to_csv(result.latency_series, path,
                  header=("time_s", "latency_s"))
    written.append(path)

    path = os.path.join(directory, "throughput.csv")
    series_to_csv(result.throughput_series, path,
                  header=("time_s", "records_per_s"))
    written.append(path)

    if result.scaling_metrics is not None:
        path = os.path.join(directory, "suspension.csv")
        series_to_csv(result.scaling_metrics.suspension_series(), path,
                      header=("time_s", "cumulative_suspension_s"))
        written.append(path)

    path = os.path.join(directory, "summary.json")
    summary = dict(result.summary())
    summary["label"] = result.label
    summary["scale_at"] = result.scale_at
    summary["end_at"] = result.end_at
    summary["source_records"] = result.source_records
    summary["sink_records"] = result.sink_records
    with open(path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
    written.append(path)
    return written
