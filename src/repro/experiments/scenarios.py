"""Canonical experiment scenarios for every figure, at two scales.

``quick`` (the default everywhere, including the benchmark suite) keeps the
paper's input rates, operator parallelism, key-group counts and state-size
*ratios*, but shortens the protocol (warm-up/hold) and uses batch entities
so the full suite runs on a laptop.  ``paper`` restores the §V-A timings
(300 s warm-up, 100 s stabilization hold, full sensitivity grid); expect
hours of wall-clock for the full set.

EXPERIMENTS.md records which scale produced the committed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from ..workloads.custom import CustomConfig, CustomWorkload
from ..workloads.nexmark import (NexmarkConfig, NexmarkQ7, NexmarkQ8,
                                 NexmarkQ8Config)
from ..workloads.twitch import TwitchConfig, TwitchWorkload

__all__ = ["Scenario", "QUICK", "PAPER", "make_workload",
           "SENSITIVITY_GRID_QUICK", "SENSITIVITY_GRID_PAPER"]


@dataclass(frozen=True)
class Scenario:
    """Protocol timings and scale factors for one evaluation tier."""

    name: str
    warmup: float
    post_duration: float
    stabilize_hold: float
    #: Multiplier on workload state-size calibration constants.
    state_scale: float
    #: Batch entities per simulated record (Q8 halves this internally).
    batch_size: int
    #: Sensitivity measurement window (paper: 600 s).
    sensitivity_window: float
    #: Scaling-operator parallelism before/after, main experiments (§V-B).
    old_parallelism: int = 8
    new_parallelism: int = 12
    #: Sensitivity-analysis parallelism (§V-D).
    sens_old_parallelism: int = 25
    sens_new_parallelism: int = 30


QUICK = Scenario(
    name="quick",
    warmup=30.0,
    post_duration=150.0,
    stabilize_hold=10.0,
    state_scale=1.0,
    batch_size=100,
    sensitivity_window=60.0,
)

PAPER = Scenario(
    name="paper",
    warmup=300.0,
    post_duration=600.0,
    stabilize_hold=100.0,
    state_scale=1.0,
    batch_size=50,
    sensitivity_window=600.0,
)


def make_workload(kind: str, scenario: Scenario = QUICK, **overrides):
    """Build a workload configured for ``scenario``.

    ``kind`` ∈ {"q7", "q8", "twitch", "custom"}.  ``overrides`` patch the
    workload config after scenario scaling (used by the sensitivity sweep).
    """
    if kind == "q7":
        config = NexmarkConfig(
            batch_size=scenario.batch_size,
            operator_parallelism=scenario.old_parallelism)
        config.bytes_per_record *= scenario.state_scale
        config = replace(config, **overrides)
        return NexmarkQ7(config)
    if kind == "q8":
        config = NexmarkQ8Config(
            operator_parallelism=scenario.old_parallelism)
        config.bytes_per_record *= scenario.state_scale
        config = replace(config, **overrides)
        return NexmarkQ8(config)
    if kind == "twitch":
        config = TwitchConfig(
            batch_size=scenario.batch_size,
            operator_parallelism=scenario.old_parallelism)
        config.bytes_per_record *= scenario.state_scale
        config = replace(config, **overrides)
        return TwitchWorkload(config)
    if kind == "custom":
        config = CustomConfig(
            batch_size=scenario.batch_size,
            operator_parallelism=scenario.sens_old_parallelism)
        config.target_state_bytes *= scenario.state_scale
        config = replace(config, **overrides)
        return CustomWorkload(config)
    raise ValueError(f"unknown workload kind: {kind!r}")


#: §V-D sensitivity grid: input rates (tps) × state sizes (bytes) × skews.
SENSITIVITY_GRID_PAPER: Dict[str, List[float]] = {
    "rates": [5_000.0, 10_000.0, 15_000.0, 20_000.0],
    "state_bytes": [5e9, 10e9, 20e9, 30e9],
    "skews": [0.0, 0.5, 1.0, 1.5],
}

#: Reduced grid for the benchmark suite: grid corners + skew extremes.
SENSITIVITY_GRID_QUICK: Dict[str, List[float]] = {
    "rates": [5_000.0, 20_000.0],
    "state_bytes": [5e9, 30e9],
    "skews": [0.0, 1.5],
}
