"""Experiment harness: warm-up → scale → stabilization protocol (§V-B).

Every evaluation figure runs the same protocol:

1. a warm-up phase establishes steady state (300 s in the paper),
2. a scaling operation expands the bottleneck operator,
3. a post-scaling phase runs until latency re-stabilizes.

The **scaling period** follows the paper's definition: from the initial
scaling operation until latency stays within 110 % of the pre-scaling level
for 100 consecutive seconds (both thresholds configurable so scaled-down
runs keep the same semantics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..engine.cluster import ClusterModel
from ..engine.runtime import JobConfig, StreamJob
from ..scaling.base import ScalingController, ScalingMetrics
from ..workloads.base import Workload

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment",
           "detect_scaling_period"]

ControllerFactory = Callable[[StreamJob], ScalingController]


@dataclass
class ExperimentConfig:
    """One (workload × controller) run."""

    workload: Workload
    controller_factory: Optional[ControllerFactory] = None
    new_parallelism: int = 12
    warmup: float = 30.0
    post_duration: float = 90.0
    #: Window for throughput bucketing (seconds).
    measure_window: float = 1.0
    #: Pre-scale latency baseline window (seconds before the scale).
    baseline_window: float = 10.0
    #: Stabilization criterion: latency within `threshold`×baseline ...
    stabilize_threshold: float = 1.10
    #: ... held for this many seconds (100 s in the paper).
    stabilize_hold: float = 10.0
    cluster: Optional[ClusterModel] = None
    job_config: Optional[JobConfig] = None
    #: Record-plane knobs without constructing a full JobConfig: when
    #: ``job_config`` is None these build one ("batched"/"single", and the
    #: batch-size cap).  Ignored when an explicit job_config is given.
    record_plane: Optional[str] = None
    max_batch_size: Optional[int] = None
    #: Kernel scheduler override ("heap"/"calendar"); None = engine default.
    scheduler: Optional[str] = None
    #: Keyed-state backend override ("dict"/"changelog"); None = engine
    #: default.  Like the other knobs, ignored when an explicit
    #: ``job_config`` is given.
    state_backend: Optional[str] = None
    label: str = ""
    #: Opt-in structured tracing: when True the job's telemetry subsystem
    #: is enabled before warm-up and exposed on the result.  Off by default
    #: so figure runs stay bit-identical to the un-instrumented engine.
    telemetry: bool = False
    #: Worker processes for the run.  None = the engine default
    #: (``REPRO_SHARDS`` or 1).  Sharding only applies to plain runs —
    #: any run with a scaling controller, telemetry, or a custom cluster
    #: falls back to single-process so rescale/chaos semantics are
    #: untouched (same pattern as the batched plane's per-record
    #: fallback).  The fallback is silent by design: the result is
    #: identical either way, only wall-clock differs.
    shards: Optional[int] = None
    #: Cut-edge flow-control window for sharded runs (becomes the
    #: engine-wide ``inbox_capacity`` of the built job so sharded and
    #: single-process runs stay same-config).  None = the engine default
    #: (``REPRO_SHARD_INBOX`` or 512); only consulted when the run
    #: actually shards.
    shard_inbox_capacity: Optional[int] = None
    #: Cut-edge data plane for sharded runs ("auto"/"shm"/"pipe").
    #: None = the engine default (``REPRO_SHARD_TRANSPORT`` or "auto",
    #: which picks shared memory).
    shard_transport: Optional[str] = None

    def __post_init__(self):
        if (self.record_plane is not None
                and self.record_plane not in JobConfig.RECORD_PLANES):
            raise ValueError(
                f"unknown record_plane: {self.record_plane!r} "
                f"(expected one of: {', '.join(JobConfig.RECORD_PLANES)} "
                "— or None for the engine default)")
        if self.max_batch_size is not None and (
                not isinstance(self.max_batch_size, int)
                or isinstance(self.max_batch_size, bool)
                or not 1 <= self.max_batch_size
                <= JobConfig.MAX_BATCH_SIZE_LIMIT):
            raise ValueError(
                "max_batch_size must be an integer in "
                f"[1, {JobConfig.MAX_BATCH_SIZE_LIMIT}] or None, "
                f"got {self.max_batch_size!r}")
        if (self.scheduler is not None
                and self.scheduler not in JobConfig.SCHEDULERS):
            raise ValueError(
                f"unknown scheduler: {self.scheduler!r} "
                f"(expected one of: {', '.join(JobConfig.SCHEDULERS)} "
                "— or None for the engine default)")
        if (self.state_backend is not None
                and self.state_backend not in JobConfig.STATE_BACKENDS):
            raise ValueError(
                f"unknown state_backend: {self.state_backend!r} "
                f"(expected one of: "
                f"{', '.join(JobConfig.STATE_BACKENDS)} "
                "— or None for the engine default)")
        if self.shards is not None and (
                not isinstance(self.shards, int)
                or isinstance(self.shards, bool)
                or not 1 <= self.shards <= JobConfig.MAX_SHARDS):
            raise ValueError(
                f"shards must be an integer in [1, {JobConfig.MAX_SHARDS}] "
                f"or None, got {self.shards!r}")
        if self.shard_inbox_capacity is not None and (
                not isinstance(self.shard_inbox_capacity, int)
                or isinstance(self.shard_inbox_capacity, bool)
                or not 1 <= self.shard_inbox_capacity
                <= JobConfig.MAX_SHARD_INBOX):
            raise ValueError(
                "shard_inbox_capacity must be an integer in "
                f"[1, {JobConfig.MAX_SHARD_INBOX}] or None, "
                f"got {self.shard_inbox_capacity!r}")
        if (self.shard_transport is not None
                and self.shard_transport not in JobConfig.SHARD_TRANSPORTS):
            raise ValueError(
                f"unknown shard_transport: {self.shard_transport!r} "
                f"(expected one of: "
                f"{', '.join(JobConfig.SHARD_TRANSPORTS)} "
                "— or None for the engine default)")


@dataclass
class ExperimentResult:
    """Everything a figure needs from one run."""

    label: str
    controller_name: str
    scale_at: float
    end_at: float
    latency_series: List[Tuple[float, float]]
    throughput_series: List[Tuple[float, float]]
    pre_latency: Dict[str, float]
    during_latency: Dict[str, float]
    scaling_metrics: Optional[ScalingMetrics]
    scaling_period: Optional[float]
    source_records: int
    sink_records: int
    job: Optional[StreamJob] = field(default=None, repr=False)
    #: The job's Telemetry bundle when ExperimentConfig.telemetry was set.
    telemetry: Optional[object] = field(default=None, repr=False)

    @property
    def peak_latency(self) -> float:
        return self.during_latency.get("peak", 0.0)

    @property
    def mean_latency(self) -> float:
        return self.during_latency.get("mean", 0.0)

    def summary(self) -> Dict[str, float]:
        m = self.scaling_metrics
        return {
            "controller": self.controller_name,
            "peak_latency": self.peak_latency,
            "mean_latency": self.mean_latency,
            "pre_mean_latency": self.pre_latency.get("mean", 0.0),
            "scaling_period": self.scaling_period,
            "migration_duration": m.duration if m else None,
            "cumulative_propagation_delay":
                m.cumulative_propagation_delay() if m else None,
            "avg_dependency_overhead":
                m.average_dependency_overhead() if m else None,
            "total_suspension": m.total_suspension() if m else None,
            "remigrations": m.remigrations if m else 0,
            "records_rerouted": m.records_rerouted if m else 0,
        }


def detect_scaling_period(latency_series: List[Tuple[float, float]],
                          scale_at: float,
                          baseline: float,
                          threshold: float = 1.10,
                          hold: float = 10.0,
                          end_at: Optional[float] = None
                          ) -> Optional[float]:
    """Seconds from ``scale_at`` until latency re-stabilizes (§V-B).

    Stabilization = the earliest time ``t`` after the scale such that every
    latency sample in ``[t, t + hold]`` is at most ``threshold * baseline``.
    Returns None when the series never stabilizes before ``end_at``
    (censored — reported as the full post-scaling window by callers).
    """
    if baseline <= 0:
        baseline = min((v for t, v in latency_series if t > scale_at),
                       default=0.0)
        if baseline <= 0:
            return 0.0
    limit = threshold * baseline
    after = [(t, v) for t, v in latency_series if t >= scale_at]
    if not after:
        return None
    horizon = end_at if end_at is not None else after[-1][0]
    # Bucket-smooth (2 s means) so single-sample noise, present in any
    # marker-based measurement, does not reset the hold window.
    bucket = 2.0
    buckets: Dict[int, List[float]] = {}
    for t, v in after:
        buckets.setdefault(int((t - scale_at) // bucket), []).append(v)
    smoothed = [(scale_at + (i + 0.5) * bucket, sum(vs) / len(vs))
                for i, vs in sorted(buckets.items())]
    candidate: Optional[float] = None
    for t, v in smoothed:
        if v > limit:
            candidate = None
            continue
        if candidate is None:
            candidate = t
        if t - candidate >= hold:
            return max(0.0, candidate - scale_at)
    if candidate is not None and horizon - candidate >= hold:
        return max(0.0, candidate - scale_at)
    return None


def _run_experiment_sharded(config: ExperimentConfig, job_config,
                            shards: int) -> ExperimentResult:
    """Plain (no-controller) run on the sharded kernel.

    The merged per-shard view is loaded into a real
    :class:`~repro.engine.metrics.MetricsCollector` so every downstream
    statistic (latency stats, throughput buckets) uses the exact same
    code path as a single-process run.  Results are identical by the
    shard-vs-single equivalence contract; only wall-clock differs.
    """
    import copy
    import dataclasses as _dc

    from ..engine.metrics import MetricsCollector
    from ..simulation.sharded import run_sharded

    # Explicit shard knobs override the job config for *this* run; the
    # flow-control window applies engine-wide (the sharded run and the
    # single reference inside run_sharded stay same-config).
    if (config.shard_inbox_capacity is not None
            or config.shard_transport is not None):
        overrides = {}
        if config.shard_inbox_capacity is not None:
            overrides["shard_inbox_capacity"] = config.shard_inbox_capacity
            overrides["inbox_capacity"] = config.shard_inbox_capacity
        if config.shard_transport is not None:
            overrides["shard_transport"] = config.shard_transport
        base = job_config if job_config is not None else JobConfig()
        job_config = _dc.replace(base, **overrides)

    workload = config.workload
    end_at = config.warmup + config.post_duration
    result = run_sharded(
        # Each call (probe + one per worker) builds from a pristine copy
        # so a Workload whose build mutates internal state stays
        # deterministic across processes.
        lambda: copy.deepcopy(workload),
        until=end_at, shards=shards, job_config=job_config)
    if not result.backpressure_safe:
        # The credit ledger could not certify the run even after
        # replanning — results may differ from single-process, so the
        # figure falls back to the reference kernel.
        import dataclasses as _dc
        return run_experiment(_dc.replace(config, shards=1))

    metrics = MetricsCollector()
    view = result.semantic_view()
    metrics.latency_samples = list(view["latency_samples"])
    metrics._source_events = list(view["source_events"])
    metrics._sink_events = list(view["sink_events"])
    metrics.custom = {k: list(v) for k, v in view["custom"].items()}

    scale_at = config.warmup
    latency = metrics.latency_series()
    throughput = metrics.throughput_series(
        window=config.measure_window, start=0.0, end=end_at)
    pre = metrics.latency_stats(
        start=scale_at - config.baseline_window, end=scale_at)
    during = metrics.latency_stats(start=scale_at, end=end_at)
    return ExperimentResult(
        label=config.label or workload.name,
        controller_name="no-scale",
        scale_at=scale_at,
        end_at=end_at,
        latency_series=latency,
        throughput_series=throughput,
        pre_latency=pre,
        during_latency=during,
        scaling_metrics=None,
        scaling_period=None,
        source_records=metrics.total_source_output(),
        sink_records=metrics.total_sink_input(),
        job=None,
        telemetry=None,
    )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Execute the three-phase protocol and collect the figure inputs."""
    workload = config.workload
    job_config = config.job_config
    if job_config is None and (config.record_plane is not None
                               or config.max_batch_size is not None
                               or config.scheduler is not None
                               or config.state_backend is not None):
        overrides = {}
        if config.record_plane is not None:
            overrides["record_plane"] = config.record_plane
        if config.max_batch_size is not None:
            overrides["max_batch_size"] = config.max_batch_size
        if config.scheduler is not None:
            overrides["scheduler"] = config.scheduler
        if config.state_backend is not None:
            overrides["state_backend"] = config.state_backend
        job_config = JobConfig(**overrides)

    effective_shards = config.shards
    if effective_shards is None:
        effective_shards = (job_config.shards if job_config is not None
                            else JobConfig().shards)
    if (effective_shards > 1 and config.controller_factory is None
            and not config.telemetry and config.cluster is None):
        from ..simulation.sharded import supports_sharding
        if supports_sharding(job_config):
            return _run_experiment_sharded(config, job_config,
                                           effective_shards)

    job = workload.build(cluster=config.cluster, job_config=job_config)
    telemetry = job.enable_telemetry() if config.telemetry else None
    job.run(until=config.warmup)

    controller = None
    if config.controller_factory is not None:
        controller = config.controller_factory(job)
        controller.request_rescale(workload.scaling_operator,
                                   config.new_parallelism)
    scale_at = config.warmup
    end_at = config.warmup + config.post_duration
    job.run(until=end_at)

    latency = job.metrics.latency_series()
    throughput = job.metrics.throughput_series(
        window=config.measure_window, start=0.0, end=end_at)
    pre = job.metrics.latency_stats(
        start=scale_at - config.baseline_window, end=scale_at)
    during = job.metrics.latency_stats(start=scale_at, end=end_at)
    period = None
    if controller is not None:
        period = detect_scaling_period(
            latency, scale_at, pre.get("mean", 0.0),
            threshold=config.stabilize_threshold,
            hold=config.stabilize_hold,
            end_at=end_at)
        if period is None:
            period = config.post_duration  # censored: never re-stabilized
    return ExperimentResult(
        label=config.label or workload.name,
        controller_name=controller.name if controller else "no-scale",
        scale_at=scale_at,
        end_at=end_at,
        latency_series=latency,
        throughput_series=throughput,
        pre_latency=pre,
        during_latency=during,
        scaling_metrics=controller.metrics if controller else None,
        scaling_period=period,
        source_records=job.metrics.total_source_output(),
        sink_records=job.metrics.total_sink_input(),
        job=job,
        telemetry=telemetry,
    )
