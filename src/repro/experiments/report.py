"""Plain-text rendering of figure outputs (paper-vs-measured tables)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_fig10", "format_fig12", "format_fig13",
           "format_fig14", "format_fig15", "format_fig02"]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Dict], columns: Optional[List[str]] = None,
                 title: str = "") -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(c[i]) for c in cells))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in cells:
        lines.append("  ".join(c.ljust(w)
                               for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def format_fig02(output: Dict) -> str:
    rows = []
    for name, ratio in output["ratios"].items():
        rows.append({
            "system": name,
            "avg_latency_ratio_vs_noscale": ratio["avg_ratio"],
            "peak_latency_ratio_vs_noscale": ratio["peak_ratio"],
        })
    table = format_table(
        rows, title="Fig. 2 — Unbound probe (paper: OTFS 3.47x/4.8x, "
                    "Unbound 1.25x/1.14x avg/peak vs No Scale)")
    return table


def format_fig10(output: Dict) -> str:
    parts = [format_table(
        output["rows"],
        columns=["workload", "system", "peak_latency", "mean_latency",
                 "pre_mean_latency", "scaling_period"],
        title="Fig. 10 — end-to-end latency during scaling (seconds)")]
    reduction_rows = []
    for kind, per_other in output["reductions"].items():
        for other, vals in per_other.items():
            reduction_rows.append({
                "workload": kind,
                "drrs_vs": other,
                "peak_reduction_pct": vals["peak_reduction_pct"],
                "mean_reduction_pct": vals["mean_reduction_pct"],
                "period_reduction_pct": vals["period_reduction_pct"],
            })
    parts.append(format_table(
        reduction_rows,
        title="DRRS reductions (paper: Q7 81.1/95.5/86, Q8 76.6/93.6/80.1 "
              "vs Megaphone; Q7 80.3/94.2/82.7, Q8 62.8/88.2/72.8 vs Meces)"))
    return "\n\n".join(parts)


def format_fig12(output: Dict) -> str:
    return format_table(
        output["rows"],
        title="Fig. 12 — cumulative propagation delay & average "
              "dependency-related overhead (seconds)")


def format_fig13(output: Dict) -> str:
    return format_table(
        output["rows"],
        title="Fig. 13 — cumulative suspension time (seconds)")


def format_fig14(output: Dict) -> str:
    return format_table(
        output["rows"],
        title="Fig. 14 — mechanism isolation on Twitch (paper: DR +30/+22, "
              "Schedule +18/+15, Subscale +23/+18 peak/avg % vs full DRRS)")


def format_fig15(output: Dict) -> str:
    return format_table(
        output["rows"],
        columns=["system", "skew", "rate", "state_bytes",
                 "throughput_deviation_pct"],
        title="Fig. 15 — throughput deviation (%) across "
              "rate x state size x skew")
